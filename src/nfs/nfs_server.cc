#include "nfs/nfs_server.h"

#include <algorithm>

#include "common/hash.h"
#include "common/log.h"

namespace gvfs::nfs {

namespace {

// Map a Result/Status error into an NFS status word for a result body.
NfsStat to_nfsstat(const Status& st) { return st.code(); }

template <typename Res>
rpc::MessagePtr error_res(NfsStat s) {
  auto res = std::make_shared<Res>();
  res->status = s;
  return res;
}

}  // namespace

NfsServer::NfsServer(sim::SimKernel& kernel, vfs::MemFs& fs, sim::DiskModel& disk,
                     NfsServerConfig cfg)
    : kernel_(kernel),
      fs_(fs),
      disk_(disk),
      cfg_(cfg),
      page_cache_(cfg.buffer_cache_bytes, cfg.page_size),
      nfsd_(kernel, cfg.nfsd_threads),
      write_verifier_(0x6776667376657266ULL) {
  page_cache_.set_writeback(
      [this](sim::Process& p, u64, u64, const blob::BlobRef& data) {
        disk_.access(p, data ? data->size() : cfg_.page_size,
                     sim::Locality::kSequential);
      });
}

Status NfsServer::add_export(const std::string& path) {
  GVFS_RETURN_IF_ERROR(fs_.mkdirs(path));
  GVFS_ASSIGN_OR_RETURN(vfs::FileId id, fs_.resolve(path));
  exports_[path] = id;
  return Status::ok();
}

Fh NfsServer::root_fh(const std::string& export_path) {
  auto it = exports_.find(export_path);
  return it == exports_.end() ? Fh{} : Fh{cfg_.fsid, it->second};
}

u64 NfsServer::calls(Proc proc) const {
  auto it = proc_calls_.find(static_cast<u32>(proc));
  return it == proc_calls_.end() ? 0 : it->second;
}

void NfsServer::reset_stats() {
  proc_calls_.clear();
  total_calls_.reset();
  service_ms_.reset();
  page_cache_.reset_stats();
}

PostOpAttr NfsServer::post_attr_(vfs::FileId id) {
  PostOpAttr poa;
  auto a = fs_.getattr(id);
  if (a.is_ok()) poa.attr = *a;
  return poa;
}

void NfsServer::charge_read_(sim::Process& p, vfs::FileId id, u64 file_size,
                             u64 offset, u64 len) {
  if (len == 0) return;
  u64 first = offset / cfg_.page_size;
  u64 last = (offset + len - 1) / cfg_.page_size;
  u64 pages_per_cluster = std::max<u64>(1, cfg_.readahead_bytes / cfg_.page_size);
  for (u64 pg = first; pg <= last; ++pg) {
    if (page_cache_.lookup(id, pg)) continue;
    // Miss: one disk op for the readahead cluster containing this page.
    u64 cluster_first = pg - (pg % pages_per_cluster);
    u64 start = cluster_first * cfg_.page_size;
    u64 bytes = file_size > start
                    ? std::min<u64>(cfg_.readahead_bytes, file_size - start)
                    : cfg_.page_size;
    auto it = last_read_page_.find(id);
    sim::Locality loc =
        (it != last_read_page_.end() &&
         cluster_first >= it->second && cluster_first <= it->second + 2 * pages_per_cluster)
            ? sim::Locality::kSequential
            : sim::Locality::kRandom;
    last_read_page_[id] = cluster_first;
    disk_.access(p, bytes, loc);
    for (u64 i = 0; i < pages_per_cluster; ++i) {
      u64 cp = cluster_first + i;
      u64 off = cp * cfg_.page_size;
      if (off >= file_size && cp != pg) continue;
      u64 n = off < file_size ? std::min<u64>(cfg_.page_size, file_size - off) : 0;
      auto data = n > 0 ? fs_.read_ref(id, off, n) : Result<blob::BlobRef>(blob::zero_ref(0));
      page_cache_.insert(p, id, cp, data.is_ok() ? *data : blob::zero_ref(0),
                         /*dirty=*/false);
    }
  }
}

// ------------------------------------------------- duplicate request cache --

bool NfsServer::is_nonidempotent_(Proc proc) {
  switch (proc) {
    case Proc::kSetattr:
    case Proc::kWrite:
    case Proc::kCreate:
    case Proc::kMkdir:
    case Proc::kSymlink:
    case Proc::kRemove:
    case Proc::kRmdir:
    case Proc::kRename:
    case Proc::kLink:
      return true;
    default:
      return false;
  }
}

u64 NfsServer::drc_key_(const rpc::RpcCall& call) const {
  // Real DRCs key on (xid, client address, prog, proc); our client identity
  // is the credential's (machine, uid). Distinct transactions always carry
  // distinct xids per client; a retransmission reuses its xid. The hash is
  // only a bucket locator — entries carry the full tuple and every hit is
  // verified with drc_matches_(), so a collision degrades to a miss rather
  // than replaying another transaction's reply.
  u64 h = fnv1a64(call.cred.machine);
  h = hash_combine(h, call.cred.uid);
  h = hash_combine(h, (static_cast<u64>(call.prog) << 32) | call.proc);
  h = hash_combine(h, call.xid);
  if (cfg_.drc_key_bits < 64) h &= (u64{1} << cfg_.drc_key_bits) - 1;
  return h;
}

bool NfsServer::drc_matches_(const DrcEntry& e, const rpc::RpcCall& call) {
  return e.xid == call.xid && e.proc == call.proc && e.prog == call.prog &&
         e.uid == call.cred.uid && e.machine == call.cred.machine;
}

void NfsServer::flush_dirty_(sim::Process& p, vfs::FileId id) {
  auto it = dirty_bytes_.find(id);
  if (it == dirty_bytes_.end() || it->second == 0) return;
  u64 n = it->second;
  disk_.access(p, n, sim::Locality::kSequential);
  // The disk write yielded: another nfsd fiber may have rehashed or cleared
  // the dirty map meanwhile, so re-find before clearing the entry.
  it = dirty_bytes_.find(id);
  if (it != dirty_bytes_.end()) it->second = 0;
}

rpc::RpcReply NfsServer::handle(sim::Process& p, const rpc::RpcCall& call) {
  // gvfs-yield: allow-held the nfsd permit models the server's fixed worker pool and spans the whole request by design
  sim::ScopedPermit permit(p, nfsd_);
  SimTime t0 = p.now();
  total_calls_.inc();
  ++proc_calls_[call.proc];
  if (cfg_.per_op_cpu > 0) p.delay(cfg_.per_op_cpu);

  rpc::RpcReply reply;
  if (cfg_.require_auth_unix && call.prog == rpc::kNfsProgram &&
      call.cred.flavor != rpc::AuthFlavor::kUnix) {
    reply = rpc::make_error_reply(call, err(ErrCode::kAuthError, "AUTH_UNIX required"));
  } else if (authorizer_ && !authorizer_(call.cred)) {
    reply = rpc::make_error_reply(call, err(ErrCode::kAuthError, "rejected by policy"));
  } else if (call.prog == rpc::kMountProgram) {
    reply = dispatch_mount_(p, call);
  } else if (call.prog == rpc::kNfsProgram) {
    reply = handle_nfs_(p, call);
  } else {
    reply = rpc::make_error_reply(call, err(ErrCode::kRpcMismatch, "unknown program"));
  }
  service_ms_.observe(static_cast<double>(p.now() - t0) /
                      static_cast<double>(kMillisecond));
  return reply;
}

rpc::RpcReply NfsServer::handle_nfs_(sim::Process& p, const rpc::RpcCall& call) {
  // Duplicate request cache: a retransmission of a recent non-idempotent
  // transaction must not execute twice (the first execution's effects are
  // already in the filesystem) — replay the cached reply. Error replies are
  // cached and replayed as well (RFC 1813 §4): re-executing e.g. a REMOVE
  // whose first reply was lost would otherwise return a spurious NOENT.
  bool cacheable = cfg_.drc_entries > 0 &&
                   is_nonidempotent_(static_cast<Proc>(call.proc));
  u64 key = 0;
  bool collided = false;
  if (cacheable) {
    key = drc_key_(call);
    auto hit = drc_.find(key);
    if (hit != drc_.end()) {
      if (drc_matches_(hit->second, call)) {
        drc_hits_.inc();
        if (tracer_) tracer_->annotate(&p, "server", "drc_hit", p.now());
        rpc::RpcReply replay;
        replay.xid = call.xid;
        replay.status = hit->second.status;
        replay.result = hit->second.result;
        return replay;
      }
      // Hash collision with a different live transaction: execute normally
      // but do not evict the resident entry (its owner may still retransmit).
      drc_collisions_.inc();
      collided = true;
      if (tracer_) tracer_->annotate(&p, "server", "drc_collision", p.now());
    }
  }
  rpc::RpcReply reply = dispatch_nfs_(p, call);
  if (cacheable && !collided) {
    if (drc_order_.size() >= cfg_.drc_entries) {
      drc_.erase(drc_order_.front());
      drc_order_.pop_front();
    }
    DrcEntry e;
    e.machine = call.cred.machine;
    e.uid = call.cred.uid;
    e.prog = call.prog;
    e.proc = call.proc;
    e.xid = call.xid;
    e.status = reply.status;
    e.result = reply.result;
    drc_.emplace(key, std::move(e));
    drc_order_.push_back(key);
    drc_inserts_.inc();
    if (tracer_) tracer_->annotate(&p, "server", "drc_insert", p.now());
  }
  return reply;
}

rpc::RpcReply NfsServer::dispatch_mount_(sim::Process&, const rpc::RpcCall& call) {
  switch (static_cast<MountProc>(call.proc)) {
    case MountProc::kNull:
      return rpc::make_reply(call, std::make_shared<VoidMsg>());
    case MountProc::kMnt: {
      auto args = rpc::message_cast<MountArgs>(call.args);
      if (!args) return rpc::make_error_reply(call, err(ErrCode::kBadXdr));
      auto res = std::make_shared<MountRes>();
      auto it = exports_.find(args->dirpath);
      if (it == exports_.end()) {
        res->status = NfsStat::kNoEnt;
      } else {
        res->root = Fh{cfg_.fsid, it->second};
      }
      return rpc::make_reply(call, res);
    }
    case MountProc::kUmnt:
      return rpc::make_reply(call, std::make_shared<VoidMsg>());
  }
  return rpc::make_error_reply(call, err(ErrCode::kRpcMismatch, "bad mount proc"));
}

rpc::RpcReply NfsServer::dispatch_nfs_(sim::Process& p, const rpc::RpcCall& call) {
  rpc::MessagePtr res;
  switch (static_cast<Proc>(call.proc)) {
    case Proc::kNull:
      res = std::make_shared<VoidMsg>();
      break;
    case Proc::kGetattr: {
      auto a = rpc::message_cast<GetattrArgs>(call.args);
      res = a ? do_getattr_(*a) : nullptr;
      break;
    }
    case Proc::kSetattr: {
      auto a = rpc::message_cast<SetattrArgs>(call.args);
      res = a ? do_setattr_(p, *a) : nullptr;
      break;
    }
    case Proc::kLookup: {
      auto a = rpc::message_cast<LookupArgs>(call.args);
      res = a ? do_lookup_(*a) : nullptr;
      break;
    }
    case Proc::kAccess: {
      auto a = rpc::message_cast<AccessArgs>(call.args);
      res = a ? do_access_(*a) : nullptr;
      break;
    }
    case Proc::kReadlink: {
      auto a = rpc::message_cast<ReadlinkArgs>(call.args);
      res = a ? do_readlink_(*a) : nullptr;
      break;
    }
    case Proc::kRead: {
      auto a = rpc::message_cast<ReadArgs>(call.args);
      res = a ? do_read_(p, *a) : nullptr;
      break;
    }
    case Proc::kWrite: {
      auto a = rpc::message_cast<WriteArgs>(call.args);
      res = a ? do_write_(p, *a) : nullptr;
      break;
    }
    case Proc::kCreate: {
      auto a = rpc::message_cast<CreateArgs>(call.args);
      res = a ? do_create_(*a, call.cred) : nullptr;
      break;
    }
    case Proc::kMkdir: {
      auto a = rpc::message_cast<MkdirArgs>(call.args);
      res = a ? do_mkdir_(*a, call.cred) : nullptr;
      break;
    }
    case Proc::kSymlink: {
      auto a = rpc::message_cast<SymlinkArgs>(call.args);
      res = a ? do_symlink_(*a) : nullptr;
      break;
    }
    case Proc::kRemove: {
      auto a = rpc::message_cast<RemoveArgs>(call.args);
      res = a ? do_remove_(*a) : nullptr;
      break;
    }
    case Proc::kRmdir: {
      auto a = rpc::message_cast<RemoveArgs>(call.args);
      res = a ? do_rmdir_(*a) : nullptr;
      break;
    }
    case Proc::kRename: {
      auto a = rpc::message_cast<RenameArgs>(call.args);
      res = a ? do_rename_(*a) : nullptr;
      break;
    }
    case Proc::kLink: {
      auto a = rpc::message_cast<LinkArgs>(call.args);
      res = a ? do_link_(*a) : nullptr;
      break;
    }
    case Proc::kReaddir: {
      auto a = rpc::message_cast<ReaddirArgs>(call.args);
      res = a ? do_readdir_(*a) : nullptr;
      break;
    }
    case Proc::kReaddirplus: {
      auto a = rpc::message_cast<ReaddirplusArgs>(call.args);
      res = a ? do_readdirplus_(*a) : nullptr;
      break;
    }
    case Proc::kPathconf: {
      auto a = rpc::message_cast<GetattrArgs>(call.args);
      res = a ? do_pathconf_(*a) : nullptr;
      break;
    }
    case Proc::kFsstat:
      res = do_fsstat_();
      break;
    case Proc::kFsinfo:
      res = do_fsinfo_();
      break;
    case Proc::kCommit: {
      auto a = rpc::message_cast<CommitArgs>(call.args);
      res = a ? do_commit_(p, *a) : nullptr;
      break;
    }
    case Proc::kLeaseAcquire: {
      auto a = rpc::message_cast<LeaseArgs>(call.args);
      res = a ? do_lease_acquire_(p, *a) : nullptr;
      break;
    }
    case Proc::kLeaseRelease: {
      auto a = rpc::message_cast<LeaseReleaseArgs>(call.args);
      res = a ? do_lease_release_(*a) : nullptr;
      break;
    }
    default:
      return rpc::make_error_reply(call, err(ErrCode::kRpcMismatch, "bad proc"));
  }
  if (!res) return rpc::make_error_reply(call, err(ErrCode::kBadXdr, "bad args type"));
  return rpc::make_reply(call, std::move(res));
}

rpc::MessagePtr NfsServer::do_getattr_(const GetattrArgs& a) {
  auto res = std::make_shared<GetattrRes>();
  auto attr = fs_.getattr(a.fh.fileid);
  if (!attr.is_ok()) {
    res->status = to_nfsstat(attr.status());
  } else {
    res->attr = Fattr{*attr};
  }
  return res;
}

rpc::MessagePtr NfsServer::do_setattr_(sim::Process& p, const SetattrArgs& a) {
  auto res = std::make_shared<SetattrRes>();
  // Truncation drops cached pages past EOF — cheap metadata op on disk.
  if (a.sattr.sa.set_size) disk_.access(p, 4_KiB, sim::Locality::kSequential);
  Status st = fs_.setattr(a.fh.fileid, a.sattr.sa);
  res->status = to_nfsstat(st);
  res->attr = post_attr_(a.fh.fileid);
  return res;
}

rpc::MessagePtr NfsServer::do_lookup_(const LookupArgs& a) {
  auto res = std::make_shared<LookupRes>();
  auto id = fs_.lookup(a.dir.fileid, a.name);
  if (!id.is_ok()) {
    res->status = to_nfsstat(id.status());
  } else {
    res->fh = Fh{cfg_.fsid, *id};
    res->obj_attr = post_attr_(*id);
  }
  res->dir_attr = post_attr_(a.dir.fileid);
  return res;
}

rpc::MessagePtr NfsServer::do_access_(const AccessArgs& a) {
  auto res = std::make_shared<AccessRes>();
  auto attr = fs_.getattr(a.fh.fileid);
  if (!attr.is_ok()) {
    res->status = to_nfsstat(attr.status());
  } else {
    res->attr.attr = *attr;
    res->access = a.access;  // permissive export
  }
  return res;
}

rpc::MessagePtr NfsServer::do_readlink_(const ReadlinkArgs& a) {
  auto res = std::make_shared<ReadlinkRes>();
  auto target = fs_.readlink(a.fh.fileid);
  if (!target.is_ok()) {
    res->status = to_nfsstat(target.status());
  } else {
    res->target = *target;
  }
  res->attr = post_attr_(a.fh.fileid);
  return res;
}

rpc::MessagePtr NfsServer::do_read_(sim::Process& p, const ReadArgs& a) {
  auto res = std::make_shared<ReadRes>();
  auto attr = fs_.getattr(a.fh.fileid);
  if (!attr.is_ok()) {
    res->status = to_nfsstat(attr.status());
    return res;
  }
  if (attr->type != vfs::FileType::kRegular) {
    res->status = NfsStat::kIsDir;
    return res;
  }
  u32 count = std::min(a.count, cfg_.max_io);
  u64 n = a.offset >= attr->size ? 0 : std::min<u64>(count, attr->size - a.offset);
  charge_read_(p, a.fh.fileid, attr->size, a.offset, n);
  auto data = n > 0 ? fs_.read_ref(a.fh.fileid, a.offset, n)
                    : Result<blob::BlobRef>(blob::zero_ref(0));
  if (!data.is_ok()) {
    res->status = to_nfsstat(data.status());
    return res;
  }
  res->count = static_cast<u32>(n);
  res->eof = a.offset + n >= attr->size;
  res->data = *data;
  res->attr.attr = *attr;
  return res;
}

rpc::MessagePtr NfsServer::do_write_(sim::Process& p, const WriteArgs& a) {
  auto res = std::make_shared<WriteRes>();
  u32 count = std::min(a.count, cfg_.max_io);
  if (!a.data || a.data->size() < count) {
    res->status = NfsStat::kInval;
    return res;
  }
  Status st = fs_.write_blob(a.fh.fileid, a.offset, a.data, 0, count);
  if (!st.is_ok()) {
    res->status = to_nfsstat(st);
    return res;
  }
  dirty_bytes_[a.fh.fileid] += count;
  if (a.stable != StableHow::kUnstable) {
    flush_dirty_(p, a.fh.fileid);
    res->committed = StableHow::kFileSync;
  } else {
    res->committed = StableHow::kUnstable;
  }
  res->count = count;
  res->verifier = write_verifier_;
  res->attr = post_attr_(a.fh.fileid);
  return res;
}

rpc::MessagePtr NfsServer::do_create_(const CreateArgs& a, const rpc::Credential& cred) {
  auto res = std::make_shared<CreateRes>();
  auto id = fs_.create(a.dir.fileid, a.name,
                       a.sattr.sa.set_mode ? a.sattr.sa.mode : 0644, cred.uid,
                       cred.gid);
  if (!id.is_ok()) {
    res->status = to_nfsstat(id.status());
    return res;
  }
  res->fh = Fh{cfg_.fsid, *id};
  res->attr = post_attr_(*id);
  return res;
}

rpc::MessagePtr NfsServer::do_mkdir_(const MkdirArgs& a, const rpc::Credential& cred) {
  auto res = std::make_shared<MkdirRes>();
  auto id = fs_.mkdir(a.dir.fileid, a.name,
                      a.sattr.sa.set_mode ? a.sattr.sa.mode : 0755, cred.uid,
                      cred.gid);
  if (!id.is_ok()) {
    res->status = to_nfsstat(id.status());
    return res;
  }
  res->fh = Fh{cfg_.fsid, *id};
  res->attr = post_attr_(*id);
  return res;
}

rpc::MessagePtr NfsServer::do_symlink_(const SymlinkArgs& a) {
  auto res = std::make_shared<SymlinkRes>();
  auto id = fs_.symlink(a.dir.fileid, a.name, a.target);
  if (!id.is_ok()) {
    res->status = to_nfsstat(id.status());
    return res;
  }
  res->fh = Fh{cfg_.fsid, *id};
  res->attr = post_attr_(*id);
  return res;
}

rpc::MessagePtr NfsServer::do_remove_(const RemoveArgs& a) {
  auto res = std::make_shared<RemoveRes>();
  res->status = to_nfsstat(fs_.remove(a.dir.fileid, a.name));
  res->dir_attr = post_attr_(a.dir.fileid);
  return res;
}

rpc::MessagePtr NfsServer::do_rmdir_(const RemoveArgs& a) {
  auto res = std::make_shared<RemoveRes>();
  res->status = to_nfsstat(fs_.rmdir(a.dir.fileid, a.name));
  res->dir_attr = post_attr_(a.dir.fileid);
  return res;
}

rpc::MessagePtr NfsServer::do_rename_(const RenameArgs& a) {
  auto res = std::make_shared<RenameRes>();
  res->status = to_nfsstat(
      fs_.rename(a.from_dir.fileid, a.from_name, a.to_dir.fileid, a.to_name));
  res->dir_attr = post_attr_(a.to_dir.fileid);
  return res;
}

rpc::MessagePtr NfsServer::do_link_(const LinkArgs& a) {
  auto res = std::make_shared<LinkRes>();
  res->status = to_nfsstat(fs_.link(a.file.fileid, a.dir.fileid, a.name));
  res->file_attr = post_attr_(a.file.fileid);
  res->dir_attr = post_attr_(a.dir.fileid);
  return res;
}

rpc::MessagePtr NfsServer::do_readdirplus_(const ReaddirplusArgs& a) {
  auto res = std::make_shared<ReaddirplusRes>();
  auto entries = fs_.readdir(a.dir.fileid);
  if (!entries.is_ok()) {
    res->status = to_nfsstat(entries.status());
    return res;
  }
  u64 budget = a.maxcount > 1_KiB ? a.maxcount - 512 : 512;
  u64 used = 0;
  for (u64 i = a.cookie; i < entries->size(); ++i) {
    const auto& e = (*entries)[i];
    u64 entry_size = 4 + 8 + xdr::size_string(e.name.size()) + 8 +
                     Fattr::wire_size() + 8 + Fh::wire_size();
    if (used + entry_size > budget && !res->entries.empty()) {
      res->eof = false;
      break;
    }
    used += entry_size;
    ReaddirplusRes::Entry out;
    out.fileid = e.id;
    out.name = e.name;
    out.cookie = i + 1;
    out.fh = Fh{cfg_.fsid, e.id};
    out.attr = post_attr_(e.id);
    res->entries.push_back(std::move(out));
  }
  res->dir_attr = post_attr_(a.dir.fileid);
  return res;
}

rpc::MessagePtr NfsServer::do_pathconf_(const GetattrArgs& a) {
  auto res = std::make_shared<PathconfRes>();
  res->attr = post_attr_(a.fh.fileid);
  return res;
}

rpc::MessagePtr NfsServer::do_readdir_(const ReaddirArgs& a) {
  auto res = std::make_shared<ReaddirRes>();
  auto entries = fs_.readdir(a.dir.fileid);
  if (!entries.is_ok()) {
    res->status = to_nfsstat(entries.status());
    return res;
  }
  // Cookie = index into the stable (sorted) child list.
  u64 cookie = a.cookie;
  u64 budget = a.max_count > 512 ? a.max_count - 256 : 256;  // header slack
  u64 used = 0;
  for (u64 i = cookie; i < entries->size(); ++i) {
    const auto& e = (*entries)[i];
    u64 entry_size = 4 + 8 + xdr::size_string(e.name.size()) + 8;
    if (used + entry_size > budget && !res->entries.empty()) {
      res->eof = false;
      break;
    }
    used += entry_size;
    res->entries.push_back(ReaddirRes::Entry{e.id, e.name, i + 1});
  }
  res->dir_attr = post_attr_(a.dir.fileid);
  return res;
}

rpc::MessagePtr NfsServer::do_fsstat_() {
  auto res = std::make_shared<FsstatRes>();
  res->total_bytes = 576_GiB;
  res->free_bytes = 500_GiB;
  res->total_files = fs_.inode_count();
  return res;
}

rpc::MessagePtr NfsServer::do_fsinfo_() {
  auto res = std::make_shared<FsinfoRes>();
  res->rtmax = res->rtpref = cfg_.max_io;
  res->wtmax = res->wtpref = cfg_.max_io;
  return res;
}

rpc::MessagePtr NfsServer::do_commit_(sim::Process& p, const CommitArgs& a) {
  auto res = std::make_shared<CommitRes>();
  flush_dirty_(p, a.fh.fileid);
  res->verifier = write_verifier_;
  res->attr = post_attr_(a.fh.fileid);
  return res;
}

// ------------------------------------------------------------------ leases --
//
// Delegation-style per-file leases (DESIGN.md 5.10). Grants and releases run
// on nfsd fibers and never block on a callback round trip: a conflicting
// acquire fires an asynchronous recall fiber at each conflicting holder and
// answers "not granted, retry later" (the NFS4ERR_DELAY shape). The acquirer
// retries until the holder flushes and is removed (recall reply), or until
// the holder's lease lapses in virtual time (partitioned holder).
//
// The lease table is only ever mutated through lease_add_holder_,
// lease_remove_holder_, lease_expire_holders_ and clear_leases; gvfs_lint
// enforces this (rule: lease-table-mutation).

rpc::MessagePtr NfsServer::do_lease_acquire_(sim::Process& p, const LeaseArgs& a) {
  auto res = std::make_shared<LeaseRes>();
  if (!cfg_.enable_leases) {
    res->status = NfsStat::kNotSupported;
    return res;
  }
  if (!fs_.getattr(a.fh.fileid).is_ok()) {
    res->status = NfsStat::kStale;
    return res;
  }
  const u64 key = a.fh.key();
  lease_expire_holders_(key, p.now());

  bool conflict = false;
  auto it = leases_.find(key);
  if (it != leases_.end()) {
    for (auto& h : it->second.holders) {
      if (h.client == a.client_id) continue;
      if (a.mode == LeaseMode::kRead && h.mode == LeaseMode::kRead) continue;
      conflict = true;
      if (!h.recall_sent) {
        h.recall_sent = true;
        spawn_recall_(it->second.fh, h.client, a.mode);
      }
    }
  }
  if (conflict) {
    leases_denied_.inc();
    res->granted = false;
    return res;
  }

  const SimTime expiry = p.now() + cfg_.lease_duration;
  lease_add_holder_(a.fh, a.client_id, a.mode, expiry);
  leases_granted_.inc();
  lease_grants_.push_back(LeaseGrant{key, a.client_id, a.mode, p.now()});
  res->granted = true;
  res->expiry = expiry;
  auto granted_it = leases_.find(key);
  res->holders =
      granted_it == leases_.end()
          ? 0u
          : static_cast<u32>(granted_it->second.holders.size());
  return res;
}

rpc::MessagePtr NfsServer::do_lease_release_(const LeaseReleaseArgs& a) {
  auto res = std::make_shared<LeaseReleaseRes>();
  if (!cfg_.enable_leases) {
    res->status = NfsStat::kNotSupported;
    return res;
  }
  if (lease_remove_holder_(a.fh.key(), a.client_id)) lease_releases_.inc();
  return res;
}

void NfsServer::lease_add_holder_(const Fh& fh, u64 client, LeaseMode mode,
                                  SimTime expiry) {
  // gvfs-lint: allow(lease-table-mutation) sanctioned helper
  LeaseEntry& e = leases_[fh.key()];
  e.fh = fh;
  for (auto& h : e.holders) {
    if (h.client != client) continue;
    // Renewal. Upgrade read->write in place; never downgrade, so a holder
    // re-probing with a read acquire keeps its write delegation.
    if (mode == LeaseMode::kWrite) h.mode = LeaseMode::kWrite;
    h.expiry = expiry;
    h.recall_sent = false;
    return;
  }
  e.holders.push_back(LeaseHolder{client, mode, expiry, false});
}

bool NfsServer::lease_remove_holder_(u64 key, u64 client) {
  auto it = leases_.find(key);
  if (it == leases_.end()) return false;
  auto& hs = it->second.holders;
  auto pos = std::find_if(hs.begin(), hs.end(), [&](const LeaseHolder& h) {
    return h.client == client;
  });
  if (pos == hs.end()) return false;
  hs.erase(pos);
  if (hs.empty()) {
    // gvfs-lint: allow(lease-table-mutation) sanctioned helper
    leases_.erase(it);
  }
  return true;
}

void NfsServer::lease_expire_holders_(u64 key, SimTime now) {
  auto it = leases_.find(key);
  if (it == leases_.end()) return;
  auto& hs = it->second.holders;
  const std::size_t before = hs.size();
  hs.erase(std::remove_if(hs.begin(), hs.end(),
                          [&](const LeaseHolder& h) { return h.expiry <= now; }),
           hs.end());
  for (std::size_t n = hs.size(); n < before; ++n) lease_expirations_.inc();
  if (hs.empty()) {
    // gvfs-lint: allow(lease-table-mutation) sanctioned helper
    leases_.erase(it);
  }
}

void NfsServer::spawn_recall_(const Fh& fh, u64 client, LeaseMode contender) {
  auto cb = lease_callbacks_.find(client);
  if (cb == lease_callbacks_.end()) {
    // Holder is not lease-aware (no callback channel registered); nothing to
    // recall, the lease simply lapses at expiry.
    return;
  }
  rpc::RpcChannel* chan = cb->second;
  lease_recalls_.inc();

  rpc::RpcCall call;
  call.xid = recall_xid_++;
  call.prog = kLeaseCallbackProgram;
  call.vers = kLeaseCallbackVersion;
  call.proc = static_cast<u32>(CallbackProc::kRecall);
  auto args = std::make_shared<RecallArgs>();
  args->fh = fh;
  args->client_id = client;
  args->contender = contender;
  call.args = args;

  const u64 key = fh.key();
  kernel_.spawn("lease-recall-" + std::to_string(call.xid),
                [this, chan, call, key, client](sim::Process& rp) {
                  rpc::RpcReply r = chan->call(rp, call);
                  auto rres = rpc::message_cast<RecallRes>(r.result);
                  if (r.status.is_ok() && rres && rres->status == NfsStat::kOk) {
                    lease_remove_holder_(key, client);
                    return;
                  }
                  // Unreachable or uncooperative holder: the lease lapses at
                  // its virtual-time expiry and the contender keeps retrying
                  // until then. Re-arm recall_sent so a later conflicting
                  // acquire retries the callback once the path heals.
                  lease_recall_failures_.inc();
                  auto it = leases_.find(key);
                  if (it == leases_.end()) return;
                  for (auto& h : it->second.holders) {
                    if (h.client == client) h.recall_sent = false;
                  }
                });
}

}  // namespace gvfs::nfs
