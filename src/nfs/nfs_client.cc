#include "nfs/nfs_client.h"

#include <algorithm>

#include "blob/extent_store.h"
#include "common/log.h"
#include "common/strings.h"

namespace gvfs::nfs {

NfsClient::NfsClient(rpc::RpcChannel& channel, rpc::Credential cred,
                     NfsClientConfig cfg)
    : channel_(channel),
      cred_(std::move(cred)),
      cfg_(cfg),
      pages_(cfg.buffer_cache_bytes, cfg.page_size) {
  // Dirty page evicted under memory pressure: asynchronous kernel writeback
  // becomes a synchronous unstable WRITE in our blocking model.
  pages_.set_writeback([this](sim::Process& p, u64 file_key, u64 page,
                              const blob::BlobRef& data) {
    auto it = key_to_fh_.find(file_key);
    if (it == key_to_fh_.end() || !data || data->size() == 0) return;
    auto args = std::make_shared<WriteArgs>();
    args->fh = it->second;
    args->offset = page * cfg_.page_size;
    args->count = static_cast<u32>(data->size());
    args->stable = StableHow::kUnstable;
    args->data = data;
    bytes_written_wire_.inc(args->count);
    (void)call_(p, Proc::kWrite, args);
  });
}

// ----------------------------------------------------------- RPC plumbing --

rpc::RpcCall NfsClient::make_call_(Proc proc, rpc::MessagePtr args) {
  rpc::RpcCall c;
  c.xid = next_xid_++;
  c.prog = rpc::kNfsProgram;
  c.vers = rpc::kNfsVersion3;
  c.proc = static_cast<u32>(proc);
  c.cred = cred_;
  c.args = std::move(args);
  return c;
}

Result<rpc::MessagePtr> NfsClient::call_(sim::Process& p, Proc proc,
                                         rpc::MessagePtr args) {
  rpc::RpcCall c = make_call_(proc, std::move(args));
  rpcs_sent_.inc();
  ++proc_counts_[c.proc];
  if (tracer_) tracer_->begin(&p, c.xid, c.proc, proc_name(proc), p.now());
  rpc::RpcReply reply = channel_.call(p, c);
  if (!reply.status.is_ok()) {
    if (tracer_) tracer_->end(&p, p.now(), false);
    return reply.status;
  }
  if (reply.xid != c.xid) {
    // A reply that doesn't match the issued call must never be accepted —
    // it belongs to some other transaction (stale retransmit, crossed
    // wires). Real clients drop the datagram; our synchronous model surfaces
    // the rejection.
    xid_mismatches_.inc();
    if (tracer_) tracer_->end(&p, p.now(), false);
    return err(ErrCode::kBadXdr, "reply xid mismatch");
  }
  if (tracer_) tracer_->end(&p, p.now(), true);
  return reply.result;
}

template <typename Res>
Result<std::shared_ptr<const Res>> NfsClient::call_as_(sim::Process& p, Proc proc,
                                                       rpc::MessagePtr args) {
  GVFS_ASSIGN_OR_RETURN(rpc::MessagePtr m, call_(p, proc, std::move(args)));
  auto res = rpc::message_cast<Res>(m);
  if (!res) return err(ErrCode::kBadXdr, "unexpected result type");
  return res;
}

u64 NfsClient::rpcs_sent(Proc proc) const {
  auto it = proc_counts_.find(static_cast<u32>(proc));
  return it == proc_counts_.end() ? 0 : it->second;
}

void NfsClient::reset_stats() {
  rpcs_sent_.reset();
  proc_counts_.clear();
  bytes_read_wire_.reset();
  bytes_written_wire_.reset();
  pages_.reset_stats();
}

void NfsClient::drop_caches() {
  pages_.drop_all();
  attr_cache_.clear();
  dentry_cache_.clear();
  path_cache_.clear();
  last_block_.clear();
}

// ------------------------------------------------------------------ mount --

Status NfsClient::mount(sim::Process& p, const std::string& export_path) {
  auto margs = std::make_shared<MountArgs>();
  margs->dirpath = export_path;
  rpc::RpcCall c;
  c.xid = next_xid_++;
  c.prog = rpc::kMountProgram;
  c.vers = rpc::kMountVersion3;
  c.proc = static_cast<u32>(MountProc::kMnt);
  c.cred = cred_;
  c.args = margs;
  rpcs_sent_.inc();
  if (tracer_) tracer_->begin(&p, c.xid, c.proc, "MOUNT", p.now());
  rpc::RpcReply reply = channel_.call(p, c);
  if (tracer_) tracer_->end(&p, p.now(), reply.status.is_ok());
  if (!reply.status.is_ok()) return reply.status;
  if (reply.xid != c.xid) {
    xid_mismatches_.inc();
    return err(ErrCode::kBadXdr, "mount reply xid mismatch");
  }
  auto res = rpc::message_cast<MountRes>(reply.result);
  if (!res) return err(ErrCode::kBadXdr, "mount result");
  if (res->status != NfsStat::kOk) return err(res->status, "mount failed");
  root_ = res->root;

  // Negotiate transfer sizes.
  auto fsinfo_args = std::make_shared<GetattrArgs>();
  fsinfo_args->fh = root_;
  auto fsinfo = call_as_<FsinfoRes>(p, Proc::kFsinfo, fsinfo_args);
  if (fsinfo.is_ok() && (*fsinfo)->status == NfsStat::kOk) {
    cfg_.rsize = std::min(cfg_.rsize, (*fsinfo)->rtmax);
    cfg_.wsize = std::min(cfg_.wsize, (*fsinfo)->wtmax);
  }
  return Status::ok();
}

// ------------------------------------------------------------- resolution --

void NfsClient::cache_attr_(const Fh& fh, const vfs::Attr& a, sim::Process& p) {
  attr_cache_[fh.key()] = CachedAttr{a, p.now() + cfg_.attr_cache_ttl};
  key_to_fh_[fh.key()] = fh;
}

Result<vfs::Attr> NfsClient::getattr_(sim::Process& p, const Fh& fh) {
  auto it = attr_cache_.find(fh.key());
  if (it != attr_cache_.end() && it->second.expires > p.now()) {
    return it->second.attr;
  }
  auto args = std::make_shared<GetattrArgs>();
  args->fh = fh;
  GVFS_ASSIGN_OR_RETURN(auto res, call_as_<GetattrRes>(p, Proc::kGetattr, args));
  if (res->status != NfsStat::kOk) return err(res->status, "getattr");
  cache_attr_(fh, res->attr.a, p);
  return res->attr.a;
}

Result<Fh> NfsClient::lookup_(sim::Process& p, const Fh& dir, const std::string& name) {
  std::string key = std::to_string(dir.key()) + "/" + name;
  auto it = dentry_cache_.find(key);
  if (it != dentry_cache_.end()) return it->second;
  auto args = std::make_shared<LookupArgs>();
  args->dir = dir;
  args->name = name;
  GVFS_ASSIGN_OR_RETURN(auto res, call_as_<LookupRes>(p, Proc::kLookup, args));
  if (res->status != NfsStat::kOk) return err(res->status, name);
  dentry_cache_[key] = res->fh;
  if (res->obj_attr.attr) cache_attr_(res->fh, *res->obj_attr.attr, p);
  key_to_fh_[res->fh.key()] = res->fh;
  return res->fh;
}

Result<Fh> NfsClient::resolve_(sim::Process& p, const std::string& path) {
  if (!mounted()) return err(ErrCode::kInval, "not mounted");
  auto hit = path_cache_.find(path);
  if (hit != path_cache_.end()) return hit->second;
  Fh cur = root_;
  for (const std::string& part : split(path, '/')) {
    if (part.empty() || part == ".") continue;
    GVFS_ASSIGN_OR_RETURN(cur, lookup_(p, cur, part));
  }
  path_cache_[path] = cur;
  return cur;
}

void NfsClient::invalidate_path_(const std::string& path) {
  auto it = path_cache_.find(path);
  if (it != path_cache_.end()) {
    attr_cache_.erase(it->second.key());
    path_cache_.erase(it);
  }
  // Component entry under its parent.
  std::string parent = path_dirname(path);
  auto pit = path_cache_.find(parent);
  if (pit != path_cache_.end()) {
    dentry_cache_.erase(std::to_string(pit->second.key()) + "/" + path_basename(path));
  } else {
    // Fallback: the name may be cached under any directory; scan.
    std::string suffix = "/" + path_basename(path);
    // gvfs-lint: allow(unordered-iteration) erases every match; the surviving set is order-independent
    for (auto d = dentry_cache_.begin(); d != dentry_cache_.end();) {
      if (ends_with(d->first, suffix)) {
        d = dentry_cache_.erase(d);
      } else {
        ++d;
      }
    }
  }
}

// ------------------------------------------------------------------- stat --

Result<vfs::Attr> NfsClient::stat(sim::Process& p, const std::string& path) {
  p.delay(cfg_.per_op_cpu);
  GVFS_ASSIGN_OR_RETURN(Fh fh, resolve_(p, path));
  GVFS_ASSIGN_OR_RETURN(vfs::Attr a, getattr_(p, fh));
  auto sz = file_sizes_.find(fh.key());
  if (sz != file_sizes_.end()) a.size = std::max(a.size, sz->second);
  return a;
}

// ------------------------------------------------------------------- read --

Status NfsClient::fill_block_(sim::Process& p, const Fh& fh, u64 file_size, u64 page) {
  u64 pages_per_block = std::max<u64>(1, cfg_.rsize / cfg_.page_size);
  u64 block = page / pages_per_block;
  u64 key = fh.key();

  auto lb = last_block_.find(key);
  bool sequential = lb != last_block_.end() && block == lb->second + 1;
  last_block_[key] = block;

  u32 batch = sequential ? std::max<u32>(1, cfg_.readahead_blocks) : 1;
  std::vector<rpc::RpcCall> calls;
  for (u32 i = 0; i < batch; ++i) {
    u64 start = (block + i) * cfg_.rsize;
    if (start >= file_size && i > 0) break;
    auto args = std::make_shared<ReadArgs>();
    args->fh = fh;
    args->offset = start;
    args->count = static_cast<u32>(
        std::min<u64>(cfg_.rsize, file_size > start ? file_size - start : 1));
    calls.push_back(make_call_(Proc::kRead, args));
  }
  rpcs_sent_.inc(calls.size());
  proc_counts_[static_cast<u32>(Proc::kRead)] += calls.size();
  // One span covers the whole (possibly pipelined) READ burst, keyed on the
  // first xid; deeper layers annotate it per block fetched.
  if (tracer_) {
    tracer_->begin(&p, calls[0].xid, calls[0].proc,
                   calls.size() == 1 ? "READ" : "READ_BATCH", p.now());
  }
  std::vector<rpc::RpcReply> replies =
      calls.size() == 1 ? std::vector<rpc::RpcReply>{channel_.call(p, calls[0])}
                        : channel_.call_pipelined(p, calls);
  if (tracer_) {
    bool all_ok = true;
    for (const rpc::RpcReply& r : replies) all_ok = all_ok && r.status.is_ok();
    tracer_->end(&p, p.now(), all_ok);
  }
  for (std::size_t i = 0; i < replies.size(); ++i) {
    if (!replies[i].status.is_ok()) return replies[i].status;
    if (replies[i].xid != calls[i].xid) {
      xid_mismatches_.inc();
      return err(ErrCode::kBadXdr, "read reply xid mismatch");
    }
    auto res = rpc::message_cast<ReadRes>(replies[i].result);
    if (!res) return err(ErrCode::kBadXdr, "read result");
    if (res->status != NfsStat::kOk) return err(res->status, "read");
    bytes_read_wire_.inc(res->count);
    u64 start = (block + i) * cfg_.rsize;
    if (res->attr.attr) cache_attr_(fh, *res->attr.attr, p);
    // Split the block into cache pages.
    u64 got = res->count;
    for (u64 off = 0; off < got; off += cfg_.page_size) {
      u64 n = std::min<u64>(cfg_.page_size, got - off);
      blob::BlobRef pg =
          std::make_shared<blob::SliceBlob>(res->data, off, n);
      pages_.insert(p, key, (start + off) / cfg_.page_size, std::move(pg),
                    /*dirty=*/false);
    }
  }
  return Status::ok();
}

Result<blob::BlobRef> NfsClient::read(sim::Process& p, const std::string& path,
                                      u64 offset, u64 len) {
  p.delay(cfg_.per_op_cpu);
  GVFS_ASSIGN_OR_RETURN(Fh fh, resolve_(p, path));
  GVFS_ASSIGN_OR_RETURN(vfs::Attr a, getattr_(p, fh));
  u64 size = a.size;
  auto sz = file_sizes_.find(fh.key());
  if (sz != file_sizes_.end()) size = std::max(size, sz->second);
  if (offset >= size || len == 0) return blob::BlobRef(blob::zero_ref(0));
  len = std::min<u64>(len, size - offset);

  u64 first = offset / cfg_.page_size;
  u64 last = (offset + len - 1) / cfg_.page_size;
  if (first == last) {
    // Single-page read: return the cached page (or a slice of it) directly
    // instead of copying through an extent map.
    auto cached = pages_.lookup(fh.key(), first);
    if (!cached) {
      GVFS_RETURN_IF_ERROR(fill_block_(p, fh, size, first));
      cached = pages_.lookup(fh.key(), first);
      if (!cached) return err(ErrCode::kIo, "page missing after fill");
    }
    const blob::BlobRef& data = *cached;
    u64 pg_start = first * cfg_.page_size;
    u64 off_in_pg = offset - pg_start;
    if (data->size() >= off_in_pg + len) {
      if (off_in_pg == 0 && data->size() == len) return *cached;
      return blob::BlobRef(std::make_shared<blob::SliceBlob>(data, off_in_pg, len));
    }
    // Short page (sparse tail): fall through to extent assembly below.
  }
  blob::ExtentStore assembled;
  assembled.truncate(len);
  for (u64 pg = first; pg <= last; ++pg) {
    auto cached = pages_.lookup(fh.key(), pg);
    if (!cached) {
      GVFS_RETURN_IF_ERROR(fill_block_(p, fh, size, pg));
      cached = pages_.lookup(fh.key(), pg);
      if (!cached) return err(ErrCode::kIo, "page missing after fill");
    }
    const blob::BlobRef& data = *cached;
    u64 pg_start = pg * cfg_.page_size;
    u64 lo = std::max(pg_start, offset);
    u64 hi = std::min({pg_start + data->size(), offset + len});
    if (lo < hi) {
      assembled.write_blob(lo - offset, data, lo - pg_start, hi - lo);
    }
  }
  return assembled.snapshot();
}

// ------------------------------------------------------------------ write --

Status NfsClient::write(sim::Process& p, const std::string& path, u64 offset,
                        blob::BlobRef data) {
  p.delay(cfg_.per_op_cpu);
  if (!data || data->size() == 0) return Status::ok();
  GVFS_ASSIGN_OR_RETURN(Fh fh, resolve_(p, path));
  GVFS_ASSIGN_OR_RETURN(vfs::Attr a, getattr_(p, fh));
  u64 key = fh.key();
  u64 len = data->size();
  u64 known = std::max(a.size, file_sizes_.count(key) ? file_sizes_[key] : 0);

  u64 first = offset / cfg_.page_size;
  u64 last = (offset + len - 1) / cfg_.page_size;
  for (u64 pg = first; pg <= last; ++pg) {
    u64 pg_start = pg * cfg_.page_size;
    u64 lo = std::max(pg_start, offset);
    u64 hi = std::min(pg_start + cfg_.page_size, offset + len);
    bool full_page = lo == pg_start && (hi - lo == cfg_.page_size);
    blob::BlobRef page_data;
    if (full_page) {
      page_data = std::make_shared<blob::SliceBlob>(data, lo - offset, hi - lo);
    } else {
      // Partial page: read-modify-write against whatever the page holds now
      // (fetch from server if it exists there and isn't cached).
      blob::ExtentStore compose;
      auto cached = pages_.lookup(key, pg);
      if (!cached && pg_start < a.size) {
        GVFS_RETURN_IF_ERROR(fill_block_(p, fh, a.size, pg));
        cached = pages_.lookup(key, pg);
      }
      if (cached && *cached) compose.write_blob(0, *cached, 0, (*cached)->size());
      u64 pg_len = std::max<u64>(hi - pg_start,
                                 std::min<u64>(cfg_.page_size,
                                               known > pg_start ? known - pg_start : 0));
      compose.truncate(std::max<u64>(pg_len, hi - pg_start));
      compose.write_blob(lo - pg_start, data, lo - offset, hi - lo);
      page_data = compose.snapshot();
    }
    pages_.insert(p, key, pg, std::move(page_data), /*dirty=*/true);
  }
  file_sizes_[key] = std::max(known, offset + len);

  // Bounded staging: past the dirty limit the client degrades to synchronous
  // writeback (the write-through behaviour the paper attributes to kernel
  // clients in WANs).
  if (pages_.dirty_pages() * cfg_.page_size > cfg_.dirty_limit_bytes) {
    GVFS_RETURN_IF_ERROR(flush_file_(p, fh));
  }
  return Status::ok();
}

Status NfsClient::flush_file_(sim::Process& p, const Fh& fh) {
  u64 key = fh.key();
  auto dirty = pages_.dirty_pages_of(key);
  if (dirty.empty()) return Status::ok();

  // Coalesce contiguous dirty pages into wsize runs, aligned to wsize block
  // boundaries so downstream caches see whole-block writes (a misaligned run
  // would straddle two proxy cache blocks and force read-merge round trips).
  u64 pages_per_wsize = std::max<u64>(1, cfg_.wsize / cfg_.page_size);
  std::size_t i = 0;
  u64 flushed = 0;
  while (i < dirty.size()) {
    u64 run_first = dirty[i].first;
    u64 run_limit = (run_first / pages_per_wsize + 1) * pages_per_wsize;
    blob::ExtentStore run;
    u64 run_len = 0;
    std::vector<u64> run_pages;
    while (i < dirty.size() && dirty[i].first == run_first + run_pages.size() &&
           dirty[i].first < run_limit && run_len + cfg_.page_size <= cfg_.wsize) {
      const blob::BlobRef& d = dirty[i].second;
      u64 n = d ? d->size() : 0;
      if (n > 0) run.write_blob(run_len, d, 0, n);
      run_len += n;
      run_pages.push_back(dirty[i].first);
      ++i;
      if (n < cfg_.page_size) break;  // short (EOF) page ends the run
    }
    if (run_len == 0) {
      for (u64 pg : run_pages) pages_.mark_clean(key, pg);
      continue;
    }
    auto args = std::make_shared<WriteArgs>();
    args->fh = fh;
    args->offset = run_first * cfg_.page_size;
    args->count = static_cast<u32>(run_len);
    args->stable = StableHow::kUnstable;
    args->data = run.snapshot();
    bytes_written_wire_.inc(run_len);
    GVFS_ASSIGN_OR_RETURN(auto res, call_as_<WriteRes>(p, Proc::kWrite, args));
    if (res->status != NfsStat::kOk) return err(res->status, "write");
    if (res->attr.attr) cache_attr_(fh, *res->attr.attr, p);
    for (u64 pg : run_pages) pages_.mark_clean(key, pg);
    flushed += run_len;
  }

  if (flushed > 0) {
    auto cargs = std::make_shared<CommitArgs>();
    cargs->fh = fh;
    cargs->offset = 0;
    cargs->count = 0;
    GVFS_ASSIGN_OR_RETURN(auto cres, call_as_<CommitRes>(p, Proc::kCommit, cargs));
    if (cres->status != NfsStat::kOk) return err(cres->status, "commit");
  }
  return Status::ok();
}

// --------------------------------------------------------------- metadata --

Status NfsClient::create(sim::Process& p, const std::string& path) {
  p.delay(cfg_.per_op_cpu);
  GVFS_ASSIGN_OR_RETURN(Fh dir, resolve_(p, path_dirname(path)));
  auto args = std::make_shared<CreateArgs>();
  args->dir = dir;
  args->name = path_basename(path);
  args->sattr.sa.set_mode = true;
  args->sattr.sa.mode = 0644;
  GVFS_ASSIGN_OR_RETURN(auto res, call_as_<CreateRes>(p, Proc::kCreate, args));
  if (res->status != NfsStat::kOk) return err(res->status, "create");
  path_cache_[path] = res->fh;
  dentry_cache_[std::to_string(dir.key()) + "/" + path_basename(path)] = res->fh;
  if (res->attr.attr) cache_attr_(res->fh, *res->attr.attr, p);
  key_to_fh_[res->fh.key()] = res->fh;
  file_sizes_[res->fh.key()] = 0;
  return Status::ok();
}

Status NfsClient::mkdirs(sim::Process& p, const std::string& path) {
  p.delay(cfg_.per_op_cpu);
  Fh cur = root_;
  std::string sofar;
  for (const std::string& part : split(path, '/')) {
    if (part.empty() || part == ".") continue;
    sofar = join_path(sofar, part);
    Result<Fh> next = lookup_(p, cur, part);
    if (next.is_ok()) {
      cur = *next;
      continue;
    }
    if (next.code() != ErrCode::kNoEnt) return next.status();
    auto args = std::make_shared<MkdirArgs>();
    args->dir = cur;
    args->name = part;
    args->sattr.sa.set_mode = true;
    args->sattr.sa.mode = 0755;
    GVFS_ASSIGN_OR_RETURN(auto res, call_as_<MkdirRes>(p, Proc::kMkdir, args));
    if (res->status != NfsStat::kOk) return err(res->status, "mkdir");
    dentry_cache_[std::to_string(cur.key()) + "/" + part] = res->fh;
    cur = res->fh;
    key_to_fh_[cur.key()] = cur;
  }
  return Status::ok();
}

Status NfsClient::remove(sim::Process& p, const std::string& path) {
  p.delay(cfg_.per_op_cpu);
  GVFS_ASSIGN_OR_RETURN(Fh dir, resolve_(p, path_dirname(path)));
  auto target = resolve_(p, path);
  auto args = std::make_shared<RemoveArgs>();
  args->dir = dir;
  args->name = path_basename(path);
  GVFS_ASSIGN_OR_RETURN(auto res, call_as_<RemoveRes>(p, Proc::kRemove, args));
  if (res->status != NfsStat::kOk) return err(res->status, "remove");
  if (target.is_ok()) {
    pages_.discard_file(target->key());
    file_sizes_.erase(target->key());
  }
  invalidate_path_(path);
  return Status::ok();
}

Status NfsClient::truncate(sim::Process& p, const std::string& path, u64 size) {
  p.delay(cfg_.per_op_cpu);
  GVFS_ASSIGN_OR_RETURN(Fh fh, resolve_(p, path));
  // Discard staged pages (they must not be written back past truncation).
  pages_.discard_file(fh.key());
  auto args = std::make_shared<SetattrArgs>();
  args->fh = fh;
  args->sattr.sa.set_size = true;
  args->sattr.sa.size = size;
  GVFS_ASSIGN_OR_RETURN(auto res, call_as_<SetattrRes>(p, Proc::kSetattr, args));
  if (res->status != NfsStat::kOk) return err(res->status, "setattr");
  if (res->attr.attr) cache_attr_(fh, *res->attr.attr, p);
  file_sizes_[fh.key()] = size;
  return Status::ok();
}

Status NfsClient::symlink(sim::Process& p, const std::string& link_path,
                          const std::string& target) {
  p.delay(cfg_.per_op_cpu);
  GVFS_ASSIGN_OR_RETURN(Fh dir, resolve_(p, path_dirname(link_path)));
  auto args = std::make_shared<SymlinkArgs>();
  args->dir = dir;
  args->name = path_basename(link_path);
  args->target = target;
  GVFS_ASSIGN_OR_RETURN(auto res, call_as_<SymlinkRes>(p, Proc::kSymlink, args));
  if (res->status != NfsStat::kOk) return err(res->status, "symlink");
  return Status::ok();
}

Status NfsClient::hard_link(sim::Process& p, const std::string& existing,
                            const std::string& link_path) {
  p.delay(cfg_.per_op_cpu);
  GVFS_ASSIGN_OR_RETURN(Fh file, resolve_(p, existing));
  GVFS_ASSIGN_OR_RETURN(Fh dir, resolve_(p, path_dirname(link_path)));
  auto args = std::make_shared<LinkArgs>();
  args->file = file;
  args->dir = dir;
  args->name = path_basename(link_path);
  GVFS_ASSIGN_OR_RETURN(auto res, call_as_<LinkRes>(p, Proc::kLink, args));
  if (res->status != NfsStat::kOk) return err(res->status, "link");
  path_cache_[link_path] = file;
  dentry_cache_[std::to_string(dir.key()) + "/" + args->name] = file;
  if (res->file_attr.attr) cache_attr_(file, *res->file_attr.attr, p);
  return Status::ok();
}

Result<std::vector<vfs::DirEntry>> NfsClient::list(sim::Process& p,
                                                   const std::string& path) {
  p.delay(cfg_.per_op_cpu);
  GVFS_ASSIGN_OR_RETURN(Fh dir, resolve_(p, path));
  std::vector<vfs::DirEntry> out;
  u64 cookie = 0;
  // READDIRPLUS: one round trip also primes the dentry and attribute caches
  // with every entry's handle and attributes.
  while (true) {
    auto args = std::make_shared<ReaddirplusArgs>();
    args->dir = dir;
    args->cookie = cookie;
    GVFS_ASSIGN_OR_RETURN(auto res,
                          call_as_<ReaddirplusRes>(p, Proc::kReaddirplus, args));
    if (res->status != NfsStat::kOk) return err(res->status, "readdirplus");
    for (const auto& e : res->entries) {
      vfs::FileType type = e.attr.attr ? e.attr.attr->type : vfs::FileType::kRegular;
      out.push_back(vfs::DirEntry{e.name, e.fileid, type});
      cookie = e.cookie;
      if (e.fh.valid()) {
        dentry_cache_[std::to_string(dir.key()) + "/" + e.name] = e.fh;
        key_to_fh_[e.fh.key()] = e.fh;
        if (e.attr.attr) cache_attr_(e.fh, *e.attr.attr, p);
      }
    }
    if (res->eof || res->entries.empty()) break;
  }
  return out;
}

Status NfsClient::flush(sim::Process& p) {
  p.delay(cfg_.per_op_cpu);
  // gvfs-lint: allow(yield-index-loop) dirty_files() returns a by-value snapshot; the flush below re-checks each file's dirty pages itself
  for (u64 key : pages_.dirty_files()) {
    auto it = key_to_fh_.find(key);
    if (it == key_to_fh_.end()) continue;
    GVFS_RETURN_IF_ERROR(flush_file_(p, it->second));
  }
  return Status::ok();
}

Status NfsClient::close(sim::Process& p, const std::string& path) {
  p.delay(cfg_.per_op_cpu);
  auto fh = resolve_(p, path);
  if (!fh.is_ok()) return Status::ok();  // never opened here
  return flush_file_(p, *fh);
}

}  // namespace gvfs::nfs
