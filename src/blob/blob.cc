#include "blob/blob.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "common/hash.h"
#include "common/rng.h"

namespace gvfs::blob {

// ------------------------------------------------------------------- Blob --

bool Blob::is_zero_range(u64 offset, u64 len) const {
  // Generic fallback: materialize in chunks and check.
  std::array<u8, 16_KiB> buf;
  while (len > 0) {
    u64 n = std::min<u64>(len, buf.size());
    read(offset, std::span<u8>(buf.data(), n));
    for (u64 i = 0; i < n; ++i) {
      if (buf[i] != 0) return false;
    }
    offset += n;
    len -= n;
  }
  return true;
}

u64 Blob::fingerprint(u64 seed, u64 offset, u64 len) const {
  // Generic byte-exact fallback: absorb the range in bounded chunks.
  std::array<u8, 64_KiB> buf;
  u64 h = fingerprint_init(seed);
  while (len > 0) {
    u64 n = std::min<u64>(len, buf.size());
    read(offset, std::span<u8>(buf.data(), n));
    h = fnv1a64(std::span<const u8>(buf.data(), n), h);
    offset += n;
    len -= n;
  }
  return h;
}

// -------------------------------------------------------------- BytesBlob --

void BytesBlob::read(u64 offset, std::span<u8> out) const {
  std::memcpy(out.data(), data_.data() + offset, out.size());
}

bool BytesBlob::is_zero_range(u64 offset, u64 len) const {
  for (u64 i = 0; i < len; ++i) {
    if (data_[offset + i] != 0) return false;
  }
  return true;
}

namespace {

// Cheap gzip-class estimate: per 4 KiB page, all-zero pages collapse to a
// few bytes; otherwise scale by byte diversity (few distinct values =>
// highly compressible).
u64 estimate_compressed(std::span<const u8> data, u64 offset, u64 len) {
  u64 total = 16;
  u64 end = offset + len;
  while (offset < end) {
    u64 n = std::min<u64>(kPage, end - offset);
    std::array<bool, 256> seen{};
    u32 distinct = 0;
    bool all_zero = true;
    for (u64 i = 0; i < n; ++i) {
      u8 b = data[offset + i];
      if (b != 0) all_zero = false;
      if (!seen[b]) {
        seen[b] = true;
        ++distinct;
      }
    }
    if (all_zero) {
      total += 8;
    } else {
      double factor = 0.1 + 0.9 * (static_cast<double>(distinct) / 256.0);
      total += static_cast<u64>(static_cast<double>(n) * factor);
    }
    offset += n;
  }
  // A real compressor never expands: it frames the raw bytes instead. The
  // clamp keeps the 16-byte header from dominating tiny ranges.
  return std::min(total, len);
}

}  // namespace

u64 BytesBlob::compressed_size(u64 offset, u64 len) const {
  return estimate_compressed(data_, offset, len);
}

// --------------------------------------------------------------- ZeroBlob --

void ZeroBlob::read(u64, std::span<u8> out) const {
  std::memset(out.data(), 0, out.size());
}

// ---------------------------------------------------------- SyntheticBlob --

SyntheticBlob::SyntheticBlob(u64 seed, u64 size, double zero_fraction,
                             double nonzero_compress_ratio)
    : seed_(seed),
      size_(size),
      zero_fraction_(std::clamp(zero_fraction, 0.0, 1.0)),
      nonzero_ratio_(std::max(nonzero_compress_ratio, 1.0)) {}

bool SyntheticBlob::page_is_zero(u64 page_index) const {
  // Zero pages occur in runs (free-memory regions are contiguous), so the
  // decision is made per 16-page (64 KiB) run: hash the run index against
  // the seed and compare with the zero fraction. Expectation matches the
  // fraction exactly; block-granular zero maps then filter at close to the
  // page-level fraction, as the paper observed for 8 KB NFS reads.
  constexpr u64 kRunPages = 16;
  u64 h = stateless_rand(seed_, page_index / kRunPages);
  double u = static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
  return u < zero_fraction_;
}

void SyntheticBlob::read(u64 offset, std::span<u8> out) const {
  u64 pos = 0;
  while (pos < out.size()) {
    u64 abs = offset + pos;
    u64 page = abs / kPage;
    u64 page_end = (page + 1) * kPage;
    u64 n = std::min<u64>(out.size() - pos, page_end - abs);
    if (page_is_zero(page)) {
      std::memset(out.data() + pos, 0, n);
    } else {
      // Deterministic bytes derived from (seed, absolute 8-byte lane).
      for (u64 i = 0; i < n; ++i) {
        u64 a = abs + i;
        u64 word = stateless_rand(seed_ ^ 0x5bd1e995u, a >> 3);
        out[pos + i] = static_cast<u8>(word >> ((a & 7) * 8));
      }
    }
    pos += n;
  }
}

bool SyntheticBlob::is_zero_range(u64 offset, u64 len) const {
  if (len == 0) return true;
  u64 first = offset / kPage;
  u64 last = (offset + len - 1) / kPage;
  for (u64 p = first; p <= last; ++p) {
    if (!page_is_zero(p)) return false;
  }
  return true;
}

u64 SyntheticBlob::compressed_size(u64 offset, u64 len) const {
  if (len == 0) return 16;
  u64 total = 16;
  u64 first = offset / kPage;
  u64 last = (offset + len - 1) / kPage;
  for (u64 p = first; p <= last; ++p) {
    u64 page_start = p * kPage;
    u64 page_end = std::min(page_start + kPage, offset + len);
    u64 n = page_end - std::max(page_start, offset);
    if (page_is_zero(p)) {
      total += 8;
    } else {
      total += static_cast<u64>(static_cast<double>(n) / nonzero_ratio_);
    }
  }
  // Same never-expands clamp as estimate_compressed.
  return std::min(total, len);
}

u64 SyntheticBlob::fingerprint(u64 seed, u64 offset, u64 len) const {
  if (len == 0) return fingerprint_init(seed);
  if (is_zero_range(offset, len)) {
    // Matches ZeroBlob exactly, so an all-zero synthetic block dedups
    // against filtered zero blocks regardless of seed_.
    return fnv1a64_zero_run(fingerprint_init(seed), len);
  }
  // Structural O(pages-in-range) digest: the bytes of [offset, offset+len)
  // are fully determined by (seed_, absolute offset, per-page zero bits) —
  // nonzero_ratio_ only shapes compressed_size — so hashing that structure
  // is content-faithful without materializing gigabytes.
  u64 h = hash_combine(fingerprint_init(seed), 0x53594e5442ULL);  // "SYNTB"
  h = hash_combine(h, seed_);
  h = hash_combine(h, offset);
  h = hash_combine(h, len);
  u64 first = offset / kPage;
  u64 last = (offset + len - 1) / kPage;
  for (u64 p = first; p <= last; ++p) {
    h = hash_combine(h, page_is_zero(p) ? 1 : 0);
  }
  return h;
}

// --------------------------------------------------------------- ViewBlob --

void ViewBlob::read(u64 offset, std::span<u8> out) const {
  std::memcpy(out.data(), data_.data() + offset, out.size());
}

bool ViewBlob::is_zero_range(u64 offset, u64 len) const {
  for (u64 i = 0; i < len; ++i) {
    if (data_[offset + i] != 0) return false;
  }
  return true;
}

u64 ViewBlob::compressed_size(u64 offset, u64 len) const {
  // Same estimate as BytesBlob (identical bytes must compress identically).
  return estimate_compressed(data_, offset, len);
}

// -------------------------------------------------------------- SliceBlob --

SliceBlob::SliceBlob(BlobRef base, u64 offset, u64 len)
    : base_(std::move(base)), off_(offset), len_(len) {}

SliceBlob::~SliceBlob() {
  if (base_) {
    std::vector<BlobRef> refs;
    refs.push_back(std::move(base_));
    release_child_refs(std::move(refs));
  }
}

void SliceBlob::detach_child_refs(std::vector<BlobRef>& out) {
  if (base_) out.push_back(std::move(base_));
}

// ---------------------------------------------------------------- helpers --

void release_child_refs(std::vector<BlobRef> refs) {
  while (!refs.empty()) {
    BlobRef ref = std::move(refs.back());
    refs.pop_back();
    if (ref && ref.use_count() == 1) {
      // Sole owner: steal the children before the destructor runs so the
      // chain unwinds on this worklist, not on the call stack.
      const_cast<Blob*>(ref.get())->detach_child_refs(refs);
    }
  }
}

u64 range_hash(const Blob& b, u64 offset, u64 len) {
  std::array<u8, 64_KiB> buf;
  u64 h = kFnvOffset;
  while (len > 0) {
    u64 n = std::min<u64>(len, buf.size());
    b.read(offset, std::span<u8>(buf.data(), n));
    h = fnv1a64(std::span<const u8>(buf.data(), n), h);
    offset += n;
    len -= n;
  }
  return h;
}

BlobRef make_bytes(std::vector<u8> data) {
  return std::make_shared<BytesBlob>(std::move(data));
}

BlobRef make_bytes(std::span<const u8> data) {
  return std::make_shared<BytesBlob>(std::vector<u8>(data.begin(), data.end()));
}

BlobRef make_view(std::shared_ptr<const void> owner,
                  std::span<const u8> data) {
  return std::make_shared<ViewBlob>(std::move(owner), data);
}

BlobRef make_zero(u64 size) { return std::make_shared<ZeroBlob>(size); }

BlobRef zero_ref(u64 size) {
  // One shared control block per hot size; every zero-filtered block and
  // empty read aliases these instead of allocating a fresh ZeroBlob.
  static const BlobRef kEmpty = make_zero(0);
  static const BlobRef k4K = make_zero(4_KiB);
  static const BlobRef k8K = make_zero(8_KiB);
  static const BlobRef k16K = make_zero(16_KiB);
  static const BlobRef k32K = make_zero(32_KiB);
  switch (size) {
    case 0: return kEmpty;
    case 4_KiB: return k4K;
    case 8_KiB: return k8K;
    case 16_KiB: return k16K;
    case 32_KiB: return k32K;
    default: return make_zero(size);
  }
}

BlobRef make_synthetic(u64 seed, u64 size, double zero_fraction,
                       double nonzero_compress_ratio) {
  return std::make_shared<SyntheticBlob>(seed, size, zero_fraction,
                                         nonzero_compress_ratio);
}

}  // namespace gvfs::blob
