#include "blob/extent_store.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace gvfs::blob {

namespace {

// Immutable snapshot of an ExtentStore's extents (shares the blob refs).
class ExtentSnapshotBlob final : public Blob {
 public:
  ExtentSnapshotBlob(std::map<u64, std::pair<BlobRef, std::pair<u64, u64>>> exts, u64 size)
      : exts_(std::move(exts)), size_(size) {}

  ~ExtentSnapshotBlob() override {
    std::vector<BlobRef> refs;
    detach_child_refs(refs);
    release_child_refs(std::move(refs));
  }

  void detach_child_refs(std::vector<BlobRef>& out) override {
    for (auto& [start, ext] : exts_) {
      if (ext.first) out.push_back(std::move(ext.first));
    }
  }

  [[nodiscard]] u64 size() const override { return size_; }

  void read(u64 offset, std::span<u8> out) const override {
    u64 pos = 0;
    while (pos < out.size()) {
      u64 abs = offset + pos;
      auto it = exts_.upper_bound(abs);
      if (it != exts_.begin()) {
        auto prev = std::prev(it);
        u64 start = prev->first;
        u64 len = prev->second.second.second;
        if (abs < start + len) {
          u64 n = std::min<u64>(out.size() - pos, start + len - abs);
          prev->second.first->read(prev->second.second.first + (abs - start),
                                   out.subspan(pos, n));
          pos += n;
          continue;
        }
      }
      u64 next_start = it == exts_.end() ? size_ : it->first;
      u64 n = std::min<u64>(out.size() - pos, std::max(next_start, abs + 1) - abs);
      std::memset(out.data() + pos, 0, n);
      pos += n;
    }
  }

  [[nodiscard]] bool is_zero_range(u64 offset, u64 len) const override {
    // Walk overlapping extents; holes are zero.
    auto it = exts_.upper_bound(offset);
    if (it != exts_.begin()) --it;
    for (; it != exts_.end() && it->first < offset + len; ++it) {
      u64 start = it->first;
      u64 elen = it->second.second.second;
      u64 lo = std::max(start, offset);
      u64 hi = std::min(start + elen, offset + len);
      if (lo < hi &&
          !it->second.first->is_zero_range(it->second.second.first + (lo - start), hi - lo)) {
        return false;
      }
    }
    return true;
  }

  [[nodiscard]] u64 compressed_size(u64 offset, u64 len) const override {
    u64 total = 16;
    auto it = exts_.upper_bound(offset);
    if (it != exts_.begin()) --it;
    u64 covered = 0;
    for (; it != exts_.end() && it->first < offset + len; ++it) {
      u64 start = it->first;
      u64 elen = it->second.second.second;
      u64 lo = std::max(start, offset);
      u64 hi = std::min(start + elen, offset + len);
      if (lo < hi) {
        total += it->second.first->compressed_size(
            it->second.second.first + (lo - start), hi - lo);
        covered += hi - lo;
      }
    }
    total += (len - covered) / 1000;  // holes compress like zeros
    return std::min(total, len);     // never model expansion
  }

 private:
  std::map<u64, std::pair<BlobRef, std::pair<u64, u64>>> exts_;
  u64 size_;
};

}  // namespace

void ExtentStore::reset(BlobRef content) {
  extents_.clear();
  size_ = content ? content->size() : 0;
  if (content && size_ > 0) {
    u64 len = content->size();
    extents_.emplace(0, Extent{len, std::move(content), 0});
  }
}

void ExtentStore::punch_(u64 offset, u64 len) {
  if (len == 0) return;
  u64 end = offset + len;
  auto it = extents_.upper_bound(offset);
  if (it != extents_.begin()) --it;
  while (it != extents_.end() && it->first < end) {
    u64 start = it->first;
    Extent ext = it->second;
    u64 ext_end = start + ext.len;
    if (ext_end <= offset) {
      ++it;
      continue;
    }
    it = extents_.erase(it);
    if (start < offset) {
      // Keep the left remainder [start, offset).
      extents_.emplace(start, Extent{offset - start, ext.src, ext.src_off});
    }
    if (ext_end > end) {
      // Keep the right remainder [end, ext_end).
      it = extents_
               .emplace(end, Extent{ext_end - end, ext.src,
                                    ext.src_off + (end - start)})
               .first;
      ++it;
    }
  }
}

void ExtentStore::read(u64 offset, std::span<u8> out) const {
  u64 pos = 0;
  while (pos < out.size()) {
    u64 abs = offset + pos;
    auto it = extents_.upper_bound(abs);
    if (it != extents_.begin()) {
      auto prev = std::prev(it);
      if (abs < prev->first + prev->second.len) {
        u64 n = std::min<u64>(out.size() - pos, prev->first + prev->second.len - abs);
        prev->second.src->read(prev->second.src_off + (abs - prev->first),
                               out.subspan(pos, n));
        pos += n;
        continue;
      }
    }
    u64 next_start = it == extents_.end() ? offset + out.size() : it->first;
    u64 n = std::min<u64>(out.size() - pos, std::max(next_start, abs + 1) - abs);
    std::memset(out.data() + pos, 0, n);
    pos += n;
  }
}

void ExtentStore::write(u64 offset, std::span<const u8> data) {
  if (data.empty()) return;
  write_blob(offset, make_bytes(data), 0, data.size());
}

void ExtentStore::write_blob(u64 offset, BlobRef src, u64 src_off, u64 len) {
  if (len == 0) return;
  assert(src && src_off + len <= src->size());
  punch_(offset, len);
  extents_.emplace(offset, Extent{len, std::move(src), src_off});
  size_ = std::max(size_, offset + len);
}

void ExtentStore::truncate(u64 new_size) {
  if (new_size < size_) {
    punch_(new_size, size_ - new_size);
  }
  size_ = new_size;
}

bool ExtentStore::is_zero_range(u64 offset, u64 len) const {
  auto it = extents_.upper_bound(offset);
  if (it != extents_.begin()) --it;
  for (; it != extents_.end() && it->first < offset + len; ++it) {
    u64 start = it->first;
    u64 lo = std::max(start, offset);
    u64 hi = std::min(start + it->second.len, offset + len);
    if (lo < hi &&
        !it->second.src->is_zero_range(it->second.src_off + (lo - start), hi - lo)) {
      return false;
    }
  }
  return true;
}

u64 ExtentStore::compressed_size(u64 offset, u64 len) const {
  u64 total = 16;
  u64 covered = 0;
  auto it = extents_.upper_bound(offset);
  if (it != extents_.begin()) --it;
  for (; it != extents_.end() && it->first < offset + len; ++it) {
    u64 start = it->first;
    u64 lo = std::max(start, offset);
    u64 hi = std::min(start + it->second.len, offset + len);
    if (lo < hi) {
      total += it->second.src->compressed_size(it->second.src_off + (lo - start), hi - lo);
      covered += hi - lo;
    }
  }
  total += (len - covered) / 1000;
  return std::min(total, len);  // never model expansion
}

u64 ExtentStore::materialized_bytes() const {
  u64 total = 0;
  for (const auto& [start, ext] : extents_) {
    if (dynamic_cast<const BytesBlob*>(ext.src.get()) != nullptr) {
      total += ext.len;
    }
  }
  return total;
}

namespace {

// Flat immutable extent list for a small range (vector, not map).
class RangeSliceBlob final : public Blob {
 public:
  struct Piece {
    u64 start;  // offset within this blob
    u64 len;
    BlobRef src;
    u64 src_off;
  };

  RangeSliceBlob(std::vector<Piece> pieces, u64 size)
      : pieces_(std::move(pieces)), size_(size) {}

  ~RangeSliceBlob() override {
    std::vector<BlobRef> refs;
    detach_child_refs(refs);
    release_child_refs(std::move(refs));
  }

  void detach_child_refs(std::vector<BlobRef>& out) override {
    for (Piece& pc : pieces_) {
      if (pc.src) out.push_back(std::move(pc.src));
    }
  }

  [[nodiscard]] u64 size() const override { return size_; }

  void read(u64 offset, std::span<u8> out) const override {
    std::memset(out.data(), 0, out.size());
    for (const Piece& pc : pieces_) {
      u64 lo = std::max(pc.start, offset);
      u64 hi = std::min(pc.start + pc.len, offset + out.size());
      if (lo < hi) {
        pc.src->read(pc.src_off + (lo - pc.start),
                     out.subspan(lo - offset, hi - lo));
      }
    }
  }

  [[nodiscard]] bool is_zero_range(u64 offset, u64 len) const override {
    for (const Piece& pc : pieces_) {
      u64 lo = std::max(pc.start, offset);
      u64 hi = std::min(pc.start + pc.len, offset + len);
      if (lo < hi && !pc.src->is_zero_range(pc.src_off + (lo - pc.start), hi - lo)) {
        return false;
      }
    }
    return true;
  }

  [[nodiscard]] u64 compressed_size(u64 offset, u64 len) const override {
    u64 total = 16;
    u64 covered = 0;
    for (const Piece& pc : pieces_) {
      u64 lo = std::max(pc.start, offset);
      u64 hi = std::min(pc.start + pc.len, offset + len);
      if (lo < hi) {
        total += pc.src->compressed_size(pc.src_off + (lo - pc.start), hi - lo);
        covered += hi - lo;
      }
    }
    total += (len - covered) / 1000;
    return std::min(total, len);  // never model expansion
  }

 private:
  std::vector<Piece> pieces_;
  u64 size_;
};

}  // namespace

BlobRef ExtentStore::read_slice(u64 offset, u64 len) const {
  if (offset >= size_) return make_zero(0);
  len = std::min(len, size_ - offset);
  std::vector<RangeSliceBlob::Piece> pieces;
  auto it = extents_.upper_bound(offset);
  if (it != extents_.begin()) --it;
  for (; it != extents_.end() && it->first < offset + len; ++it) {
    u64 start = it->first;
    u64 lo = std::max(start, offset);
    u64 hi = std::min(start + it->second.len, offset + len);
    if (lo < hi) {
      pieces.push_back(RangeSliceBlob::Piece{lo - offset, hi - lo, it->second.src,
                                             it->second.src_off + (lo - start)});
    }
  }
  return std::make_shared<RangeSliceBlob>(std::move(pieces), len);
}

BlobRef ExtentStore::snapshot() const {
  std::map<u64, std::pair<BlobRef, std::pair<u64, u64>>> exts;
  for (const auto& [start, ext] : extents_) {
    exts.emplace(start, std::make_pair(ext.src, std::make_pair(ext.src_off, ext.len)));
  }
  return std::make_shared<ExtentSnapshotBlob>(std::move(exts), size_);
}

}  // namespace gvfs::blob
