// Mutable sparse file content: an ordered map of non-overlapping extents,
// each referencing a slice of an immutable Blob. Holes read as zeros.
// Writes of real bytes create BytesBlob extents; whole blobs can be spliced
// in without materialization (how a 320 MB memory-state file lands in the
// proxy's file cache in O(1) space).
#pragma once

#include <map>
#include <span>

#include "blob/blob.h"
#include "common/types.h"

namespace gvfs::blob {

class ExtentStore {
 public:
  ExtentStore() = default;
  explicit ExtentStore(BlobRef initial) { reset(std::move(initial)); }

  // Replace all content with a single blob (size becomes blob size).
  void reset(BlobRef content);

  [[nodiscard]] u64 size() const { return size_; }

  // Read [offset, offset+out.size()); bytes past EOF read as zero — callers
  // (the VFS layer) clamp to EOF first for POSIX semantics.
  void read(u64 offset, std::span<u8> out) const;

  // Copy real bytes in, growing the file if needed.
  void write(u64 offset, std::span<const u8> data);

  // Splice `len` bytes of `src` starting at `src_off` in at `offset`,
  // without copying. Grows the file if needed.
  void write_blob(u64 offset, BlobRef src, u64 src_off, u64 len);

  // Grow (hole-extends) or shrink (drops extents past the new end).
  void truncate(u64 new_size);

  [[nodiscard]] bool is_zero_range(u64 offset, u64 len) const;
  [[nodiscard]] u64 compressed_size(u64 offset, u64 len) const;
  [[nodiscard]] u64 compressed_size() const { return compressed_size(0, size_); }

  // Bytes of heap actually held by BytesBlob extents (observability: proves
  // the lazy design — benches assert this stays small).
  [[nodiscard]] u64 materialized_bytes() const;

  [[nodiscard]] std::size_t extent_count() const { return extents_.size(); }

  // Snapshot current content as an immutable blob sharing the extents
  // (copy-on-write semantics; used for file snapshots and SCP transfers).
  // O(extent_count) — prefer read_slice for small ranges.
  [[nodiscard]] BlobRef snapshot() const;

  // Immutable view of [offset, offset+len): copies only the overlapping
  // extent entries (O(log n + k)); the hot path for block/page reads of
  // large fragmented files.
  [[nodiscard]] BlobRef read_slice(u64 offset, u64 len) const;

 private:
  struct Extent {
    u64 len = 0;
    BlobRef src;
    u64 src_off = 0;
  };

  // Remove/split any extents overlapping [offset, offset+len).
  void punch_(u64 offset, u64 len);

  std::map<u64, Extent> extents_;  // key: start offset; non-overlapping
  u64 size_ = 0;

  friend class ExtentSnapshotBlob;
};

}  // namespace gvfs::blob
