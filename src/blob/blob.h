// Content sources ("blobs") back every file byte in the repository.
//
// VM state files are gigabytes; experiments only care about which bytes are
// zero, how compressible they are, and how many cross the wire. Blobs let a
// file declare its content (seeded-synthetic, zeros, or real bytes) and
// synthesize any byte range on demand, so a 1.6 GB virtual disk costs a few
// hundred bytes of descriptor until somebody actually reads it — while unit
// tests still push real bytes end-to-end through the full protocol stack and
// verify them.
#pragma once

#include <algorithm>
#include <memory>
#include <span>
#include <vector>

#include "common/hash.h"
#include "common/types.h"

namespace gvfs::blob {

// Page granularity at which zero-ness and compressibility are tracked.
// 4 KiB matches both x86 pages (memory state files) and common FS blocks.
constexpr u64 kPage = 4_KiB;

// Default seed for content fingerprints (dedup keys). A fingerprint is the
// seeded FNV-1a state after absorbing the range's bytes, starting from
// fingerprint_init(seed); equal bytes under equal seeds hash equal, and the
// seed keeps fingerprints distinct from the unseeded range_hash values used
// by the tests' integrity checks.
constexpr u64 kDefaultFingerprintSeed = 0x6776667364647031ULL;  // "gvfsddp1"

constexpr u64 fingerprint_init(u64 seed) { return mix64(seed ^ kFnvOffset); }

class Blob {
 public:
  virtual ~Blob() = default;

  [[nodiscard]] virtual u64 size() const = 0;

  // Copy bytes [offset, offset+out.size()) into `out`.
  // Precondition: the range lies within the blob.
  virtual void read(u64 offset, std::span<u8> out) const = 0;

  // True iff every byte in [offset, offset+len) is zero.
  [[nodiscard]] virtual bool is_zero_range(u64 offset, u64 len) const;

  // Estimated size of [offset, offset+len) after gzip-class compression.
  // Every override clamps its model to len: a simulated compressor never
  // expands (it would ship the raw bytes instead, as real framing does).
  [[nodiscard]] virtual u64 compressed_size(u64 /*offset*/, u64 len) const {
    return len;
  }

  [[nodiscard]] u64 compressed_size() const { return compressed_size(0, size()); }

  // Seeded 64-bit content fingerprint of [offset, offset+len): the FNV-1a
  // state from fingerprint_init(seed) after the range's bytes. Equal bytes
  // => equal fingerprint for a given seed; synthetic blobs override this so
  // gigabyte images fingerprint in O(1) per block without materializing
  // (structural digests may differ from the byte-exact default across blob
  // representations, which only costs dedup hits, never correctness).
  [[nodiscard]] virtual u64 fingerprint(u64 seed, u64 offset, u64 len) const;

  // Teardown hook: a composite blob moves its owned child refs into `out`.
  // release_child_refs() calls it only on a sole-owner blob that is about to
  // be destroyed, so long slice/snapshot chains (one link per buffered write)
  // unwind iteratively instead of one stack frame per link.
  virtual void detach_child_refs(
      std::vector<std::shared_ptr<const Blob>>& /*out*/) {}
};

using BlobRef = std::shared_ptr<const Blob>;

// Drop every ref in `refs`; any ref that is the sole owner of a composite
// blob has its children stolen onto the worklist before it dies, keeping the
// destruction depth O(1) no matter how long the chain is.
void release_child_refs(std::vector<BlobRef> refs);

// Real bytes held in memory; the workhorse for tests and small files.
class BytesBlob final : public Blob {
 public:
  using Blob::compressed_size;
  explicit BytesBlob(std::vector<u8> data) : data_(std::move(data)) {}

  [[nodiscard]] u64 size() const override { return data_.size(); }
  void read(u64 offset, std::span<u8> out) const override;
  [[nodiscard]] bool is_zero_range(u64 offset, u64 len) const override;
  [[nodiscard]] u64 compressed_size(u64 offset, u64 len) const override;

  [[nodiscard]] const std::vector<u8>& bytes() const { return data_; }

 private:
  std::vector<u8> data_;
};

// All zeros, any size.
class ZeroBlob final : public Blob {
 public:
  using Blob::compressed_size;
  explicit ZeroBlob(u64 size) : size_(size) {}
  [[nodiscard]] u64 size() const override { return size_; }
  void read(u64 offset, std::span<u8> out) const override;
  [[nodiscard]] bool is_zero_range(u64, u64) const override { return true; }
  [[nodiscard]] u64 compressed_size(u64, u64 len) const override {
    // Long zero runs compress to roughly 1/1000 under gzip; the clamp keeps
    // tiny ranges from "compressing" larger than raw (the 16-byte header
    // used to dominate for len < ~16 bytes).
    return std::min(len, len / 1000 + 16);
  }
  [[nodiscard]] u64 fingerprint(u64 seed, u64 /*offset*/, u64 len) const override {
    // O(log len): fast-forward the FNV state over the zero run.
    return fnv1a64_zero_run(fingerprint_init(seed), len);
  }

 private:
  u64 size_;
};

// Deterministic synthetic content: a page-granular zero map plus seeded
// pseudo-random bytes for non-zero pages with a declared compressibility.
// Used to model VM memory state ("many zero-filled blocks" — §3.2.2) and
// virtual disks without storing them.
class SyntheticBlob final : public Blob {
 public:
  using Blob::compressed_size;
  // `zero_fraction` of pages are all-zero, deterministically scattered by
  // `seed`; non-zero pages compress by `nonzero_compress_ratio` (e.g. 2.5
  // means a page shrinks to 40 % of its size).
  SyntheticBlob(u64 seed, u64 size, double zero_fraction,
                double nonzero_compress_ratio);

  [[nodiscard]] u64 size() const override { return size_; }
  void read(u64 offset, std::span<u8> out) const override;
  [[nodiscard]] bool is_zero_range(u64 offset, u64 len) const override;
  [[nodiscard]] u64 compressed_size(u64 offset, u64 len) const override;
  [[nodiscard]] u64 fingerprint(u64 seed, u64 offset, u64 len) const override;

  [[nodiscard]] bool page_is_zero(u64 page_index) const;
  [[nodiscard]] u64 seed() const { return seed_; }
  [[nodiscard]] double zero_fraction() const { return zero_fraction_; }

 private:
  u64 seed_;
  u64 size_;
  double zero_fraction_;
  double nonzero_ratio_;
};

// Bytes owned by someone else (an RPC receive buffer, an mmap'd region…):
// a span plus a shared handle that keeps the owner alive. The zero-copy
// decode path wraps XDR payloads in these instead of copying them out.
class ViewBlob final : public Blob {
 public:
  using Blob::compressed_size;
  ViewBlob(std::shared_ptr<const void> owner, std::span<const u8> data)
      : owner_(std::move(owner)), data_(data) {}

  [[nodiscard]] u64 size() const override { return data_.size(); }
  void read(u64 offset, std::span<u8> out) const override;
  [[nodiscard]] bool is_zero_range(u64 offset, u64 len) const override;
  [[nodiscard]] u64 compressed_size(u64 offset, u64 len) const override;

  [[nodiscard]] std::span<const u8> bytes() const { return data_; }

 private:
  std::shared_ptr<const void> owner_;
  std::span<const u8> data_;
};

// A view into another blob.
class SliceBlob final : public Blob {
 public:
  using Blob::compressed_size;
  SliceBlob(BlobRef base, u64 offset, u64 len);
  ~SliceBlob() override;
  void detach_child_refs(std::vector<BlobRef>& out) override;
  [[nodiscard]] u64 size() const override { return len_; }
  void read(u64 offset, std::span<u8> out) const override {
    base_->read(off_ + offset, out);
  }
  [[nodiscard]] bool is_zero_range(u64 offset, u64 len) const override {
    return base_->is_zero_range(off_ + offset, len);
  }
  [[nodiscard]] u64 compressed_size(u64 offset, u64 len) const override {
    return base_->compressed_size(off_ + offset, len);
  }
  [[nodiscard]] u64 fingerprint(u64 seed, u64 offset, u64 len) const override {
    return base_->fingerprint(seed, off_ + offset, len);
  }

 private:
  BlobRef base_;
  u64 off_;
  u64 len_;
};

// FNV-1a hash of a byte range, materialized in bounded chunks; the
// end-to-end integrity check used throughout the tests.
u64 range_hash(const Blob& b, u64 offset, u64 len);
inline u64 content_hash(const Blob& b) { return range_hash(b, 0, b.size()); }

// Convenience constructors.
BlobRef make_bytes(std::vector<u8> data);
BlobRef make_bytes(std::span<const u8> data);
BlobRef make_zero(u64 size);
BlobRef make_view(std::shared_ptr<const void> owner, std::span<const u8> data);
BlobRef make_synthetic(u64 seed, u64 size, double zero_fraction,
                       double nonzero_compress_ratio);

// Shared all-zero blobs for the hot block sizes (0, 4/8/16/32 KiB …): every
// filtered zero block and empty read reuses one control block instead of
// allocating a fresh ZeroBlob. Falls back to make_zero for odd sizes.
BlobRef zero_ref(u64 size);

}  // namespace gvfs::blob
