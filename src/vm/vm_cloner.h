// VM cloning workflow (§3.2.3, benchmarked in §4.3): copy the configuration
// file, copy the memory state, symlink the virtual disk files, configure the
// clone with user-specific information, and resume it. The memory-state copy
// reads through whatever mount the image lives on — a local disk, plain NFS,
// or GVFS with all extensions — which is precisely what Figure 6 compares.
#pragma once

#include <memory>
#include <string>

#include "sim/kernel.h"
#include "vfs/fs_session.h"
#include "vm/vm_image.h"
#include "vm/vm_monitor.h"

namespace gvfs::vm {

struct CloneConfig {
  VmImagePaths image;          // paths on the image mount
  std::string clone_dir;       // destination on the compute server
  std::string clone_name;      // name of the clone (defaults to image name)
  u64 copy_chunk = 64_KiB;
  // Customizing the clone (hostname, user accounts, network) — scripted
  // edits the middleware applies before resume.
  SimDuration configure_time = 2 * kSecond;
  bool use_redo_log = true;    // non-persistent clone
  VmmConfig vmm;
};

struct CloneTiming {
  double copy_cfg_s = 0;
  double copy_mem_s = 0;
  double links_s = 0;
  double configure_s = 0;
  double resume_s = 0;
  [[nodiscard]] double total_s() const {
    return copy_cfg_s + copy_mem_s + links_s + configure_s + resume_s;
  }
};

struct CloneResult {
  CloneTiming timing;
  std::unique_ptr<VmMonitor> vm;  // resumed and ready
  VmImagePaths clone_paths;       // on the compute server
};

class VmCloner {
 public:
  // `image_fs`: the mount the golden image is visible through.
  // `local_fs`: the compute server's local filesystem.
  static Result<CloneResult> clone(sim::Process& p, vfs::FsSession& image_fs,
                                   vfs::FsSession& local_fs, const CloneConfig& cfg);
};

}  // namespace gvfs::vm
