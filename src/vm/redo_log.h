// Redo log for non-persistent virtual disks (§3.2.3): writes of a cloned VM
// go to an append-only log file while the golden virtual disk stays
// read-only; reads consult the log index first. When the log lives on a
// GVFS mount, proxy write-back absorbs its latency (the paper's
// "write-back of redo logs" case).
#pragma once

#include <map>
#include <string>

#include "blob/blob.h"
#include "common/status.h"
#include "sim/kernel.h"
#include "vfs/fs_session.h"

namespace gvfs::vm {

class RedoLog {
 public:
  // `fs`/`path`: where the log file lives. `grain`: block granularity of
  // the index (VMware uses sector runs; 4 KiB is a faithful simplification).
  RedoLog(vfs::FsSession& fs, std::string path, u32 grain = 4_KiB)
      : fs_(fs), path_(std::move(path)), grain_(grain) {}

  Status create(sim::Process& p) { return fs_.put(p, path_, blob::make_zero(0)); }

  // Record a write of `data` at virtual-disk offset `disk_off`.
  // Precondition: offset and size are grain-aligned (the VM monitor aligns).
  Status append(sim::Process& p, u64 disk_off, const blob::BlobRef& data);

  // True iff the grain containing `disk_off` has been overwritten.
  [[nodiscard]] bool covers(u64 disk_off) const;

  // Read one grain-aligned range previously written (must be covered).
  Result<blob::BlobRef> read(sim::Process& p, u64 disk_off, u64 len);

  Status flush(sim::Process& p) { return fs_.flush(p); }

  [[nodiscard]] u64 log_bytes() const { return log_size_; }
  [[nodiscard]] u64 grains() const { return index_.size(); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  vfs::FsSession& fs_;
  std::string path_;
  u32 grain_;
  std::map<u64, u64> index_;  // disk grain index -> log file offset
  u64 log_size_ = 0;
};

}  // namespace gvfs::vm
