#include "vm/guest_fs.h"

#include <algorithm>
#include <numeric>

#include "blob/extent_store.h"

namespace gvfs::vm {

namespace {
constexpr u64 kAlign = 4_KiB;
u64 align_up(u64 v) { return (v + kAlign - 1) & ~(kAlign - 1); }

u64 gcd_(u64 a, u64 b) { return b == 0 ? a : gcd_(b, a % b); }
}  // namespace

GuestFs::GuestFs(VmMonitor& vm, GuestFsConfig cfg) : vm_(vm), cfg_(cfg) {
  // Split the data region: lower half for contiguous allocations, upper half
  // for the fragment slot area.
  u64 span = cfg_.data_limit - cfg_.data_base;
  contig_next_ = cfg_.data_base;
  frag_base_ = cfg_.data_base + span / 2;
  frag_slots_ = std::max<u64>(1, (cfg_.data_limit - frag_base_) / cfg_.frag_extent);
  // A fixed odd stride, bumped until coprime with the slot count, makes
  // slot_offset_ a bijection that scatters consecutive slots.
  stride_ = 2654435761u % frag_slots_;
  if (stride_ == 0) stride_ = 1;
  while (gcd_(stride_, frag_slots_) != 1) ++stride_;
}

u64 GuestFs::slot_offset_(u64 slot_index) const {
  u64 slot = (slot_index * stride_) % frag_slots_;
  return frag_base_ + slot * cfg_.frag_extent;
}

Status GuestFs::add_file(const std::string& name, u64 initial_size, u64 reserve,
                         bool fragmented) {
  if (files_.count(name) != 0) return err(ErrCode::kExist, name);
  GFile f;
  f.size = initial_size;
  f.fragmented = fragmented;
  if (fragmented) {
    u64 extents = (std::max<u64>(initial_size, 1) + cfg_.frag_extent - 1) / cfg_.frag_extent;
    if (frag_next_slot_ + extents > frag_slots_) {
      return err(ErrCode::kNoSpc, "fragment area full");
    }
    f.first_slot = frag_next_slot_;
    f.extents = extents;
    frag_next_slot_ += extents;
  } else {
    if (reserve == 0) reserve = std::max<u64>(initial_size * 2, 64_KiB);
    reserve = align_up(std::max(reserve, initial_size));
    if (contig_next_ + reserve > frag_base_) return err(ErrCode::kNoSpc, "guest disk full");
    f.disk_off = contig_next_;
    f.capacity = reserve;
    contig_next_ += reserve;
  }
  files_[name] = f;
  return Status::ok();
}

u64 GuestFs::size(const std::string& name) const {
  auto it = files_.find(name);
  return it == files_.end() ? 0 : it->second.size;
}

Status GuestFs::ensure_extents_(GFile& f, u64 needed_bytes) {
  u64 needed = (needed_bytes + cfg_.frag_extent - 1) / cfg_.frag_extent;
  if (needed <= f.extents) return Status::ok();
  // Growth must continue the file's slot sequence; that only works for the
  // most recently allocated file. Otherwise allocate a fresh run and migrate
  // the slot window (contents live on disk at hashed slots, so "migration"
  // just re-bases the index sequence — old slots leak, like real
  // fragmentation).
  if (f.first_slot + f.extents != frag_next_slot_) {
    if (frag_next_slot_ + needed > frag_slots_) return err(ErrCode::kNoSpc);
    // Note: data in old extents would need copying in a real FS; the guest
    // cache holds recent writes, so charge nothing extra here — files that
    // grow a lot should be contiguous-mode anyway.
    f.first_slot = frag_next_slot_;
    frag_next_slot_ += needed;
    f.extents = needed;
    return Status::ok();
  }
  u64 extra = needed - f.extents;
  if (frag_next_slot_ + extra > frag_slots_) return err(ErrCode::kNoSpc);
  frag_next_slot_ += extra;
  f.extents = needed;
  return Status::ok();
}

Result<blob::BlobRef> GuestFs::frag_read_(sim::Process& p, const GFile& f, u64 offset,
                                          u64 len) {
  blob::ExtentStore out;
  out.truncate(len);
  u64 pos = 0;
  while (pos < len) {
    u64 abs = offset + pos;
    u64 ext = abs / cfg_.frag_extent;
    u64 within = abs % cfg_.frag_extent;
    u64 n = std::min<u64>(cfg_.frag_extent - within, len - pos);
    GVFS_ASSIGN_OR_RETURN(
        blob::BlobRef piece,
        vm_.disk_read(p, slot_offset_(f.first_slot + ext) + within, n));
    out.write_blob(pos, piece, 0, std::min<u64>(n, piece->size()));
    pos += n;
  }
  return out.snapshot();
}

Status GuestFs::frag_write_(sim::Process& p, GFile& f, u64 offset,
                            const blob::BlobRef& data) {
  u64 len = data->size();
  GVFS_RETURN_IF_ERROR(ensure_extents_(f, offset + len));
  u64 pos = 0;
  while (pos < len) {
    u64 abs = offset + pos;
    u64 ext = abs / cfg_.frag_extent;
    u64 within = abs % cfg_.frag_extent;
    u64 n = std::min<u64>(cfg_.frag_extent - within, len - pos);
    auto slice = std::make_shared<blob::SliceBlob>(data, pos, n);
    GVFS_RETURN_IF_ERROR(
        vm_.disk_write(p, slot_offset_(f.first_slot + ext) + within, slice));
    pos += n;
  }
  return Status::ok();
}

Result<blob::BlobRef> GuestFs::read(sim::Process& p, const std::string& name,
                                    u64 offset, u64 len) {
  auto it = files_.find(name);
  if (it == files_.end()) return err(ErrCode::kNoEnt, name);
  const GFile& f = it->second;
  if (offset >= f.size || len == 0) return blob::BlobRef(blob::make_zero(0));
  len = std::min<u64>(len, f.size - offset);
  if (f.fragmented) return frag_read_(p, f, offset, len);
  return vm_.disk_read(p, f.disk_off + offset, len);
}

Result<blob::BlobRef> GuestFs::read_all(sim::Process& p, const std::string& name) {
  return read(p, name, 0, size(name));
}

Status GuestFs::write(sim::Process& p, const std::string& name, u64 offset,
                      const blob::BlobRef& data) {
  auto it = files_.find(name);
  if (it == files_.end()) return err(ErrCode::kNoEnt, name);
  GFile& f = it->second;
  u64 len = data ? data->size() : 0;
  if (len == 0) return Status::ok();
  if (f.fragmented) {
    GVFS_RETURN_IF_ERROR(frag_write_(p, f, offset, data));
    f.size = std::max(f.size, offset + len);
    return Status::ok();
  }
  if (offset + len > f.capacity) {
    // Out-grew the reserve: relocate to a fresh extent (ext2 would fragment;
    // relocation keeps the model simple and charges the copy honestly).
    u64 new_cap = align_up(std::max((offset + len) * 2, f.capacity * 2));
    if (contig_next_ + new_cap > frag_base_) return err(ErrCode::kNoSpc, "guest disk full");
    if (f.size > 0) {
      GVFS_ASSIGN_OR_RETURN(blob::BlobRef old, vm_.disk_read(p, f.disk_off, f.size));
      GVFS_RETURN_IF_ERROR(vm_.disk_write(p, contig_next_, old));
    }
    f.disk_off = contig_next_;
    f.capacity = new_cap;
    contig_next_ += new_cap;
  }
  GVFS_RETURN_IF_ERROR(vm_.disk_write(p, f.disk_off + offset, data));
  f.size = std::max(f.size, offset + len);
  return Status::ok();
}

Status GuestFs::append(sim::Process& p, const std::string& name,
                       const blob::BlobRef& data) {
  return write(p, name, size(name), data);
}

Status GuestFs::truncate(const std::string& name, u64 size) {
  auto it = files_.find(name);
  if (it == files_.end()) return err(ErrCode::kNoEnt, name);
  GFile& f = it->second;
  if (f.fragmented) {
    it->second.size = size;
  } else {
    it->second.size = std::min(size, f.capacity);
  }
  return Status::ok();
}

Status GuestFs::remove(const std::string& name) {
  if (files_.erase(name) == 0) return err(ErrCode::kNoEnt, name);
  return Status::ok();
}

}  // namespace gvfs::vm
