#include "vm/redo_log.h"

#include <algorithm>

#include "blob/extent_store.h"

namespace gvfs::vm {

Status RedoLog::append(sim::Process& p, u64 disk_off, const blob::BlobRef& data) {
  if (!data || data->size() == 0) return Status::ok();
  if (disk_off % grain_ != 0) return err(ErrCode::kInval, "unaligned redo write");
  u64 len = data->size();
  u64 pos = 0;
  while (pos < len) {
    u64 n = std::min<u64>(grain_, len - pos);
    u64 grain_idx = (disk_off + pos) / grain_;
    auto it = index_.find(grain_idx);
    u64 log_off;
    if (it != index_.end()) {
      log_off = it->second;  // overwrite in place
    } else {
      log_off = log_size_;
      log_size_ += grain_;
      index_[grain_idx] = log_off;
    }
    auto slice = std::make_shared<blob::SliceBlob>(data, pos, n);
    GVFS_RETURN_IF_ERROR(fs_.write(p, path_, log_off, slice));
    pos += n;
  }
  return Status::ok();
}

bool RedoLog::covers(u64 disk_off) const {
  return index_.count(disk_off / grain_) != 0;
}

Result<blob::BlobRef> RedoLog::read(sim::Process& p, u64 disk_off, u64 len) {
  blob::ExtentStore out;
  out.truncate(len);
  u64 pos = 0;
  while (pos < len) {
    u64 abs = disk_off + pos;
    u64 grain_idx = abs / grain_;
    u64 within = abs % grain_;
    u64 n = std::min<u64>(grain_ - within, len - pos);
    auto it = index_.find(grain_idx);
    if (it == index_.end()) return err(ErrCode::kNoEnt, "grain not in redo log");
    GVFS_ASSIGN_OR_RETURN(blob::BlobRef piece,
                          fs_.read(p, path_, it->second + within, n));
    out.write_blob(pos, piece, 0, std::min<u64>(n, piece->size()));
    pos += n;
  }
  return out.snapshot();
}

}  // namespace gvfs::vm
