#include "vm/vm_image.h"

#include "common/hash.h"
#include "meta/meta_file.h"

namespace gvfs::vm {

namespace {

blob::BlobRef cfg_blob(const VmImageSpec& spec) {
  std::string cfg;
  cfg += "config.version = \"7\"\n";
  cfg += "virtualHW.version = \"3\"\n";
  cfg += "displayName = \"" + spec.name + "\"\n";
  cfg += "memsize = \"" + std::to_string(spec.memory_bytes >> 20) + "\"\n";
  cfg += "scsi0:0.fileName = \"" + spec.name + ".vmdk\"\n";
  cfg += "guestOS = \"linux\"\n";
  std::vector<u8> raw(cfg.begin(), cfg.end());
  return blob::make_bytes(std::move(raw));
}

blob::BlobRef vmdk_descriptor(const VmImageSpec& spec) {
  std::string d;
  d += "# Disk DescriptorFile\nversion=1\ncreateType=\"monolithicFlat\"\n";
  d += "RW " + std::to_string(spec.disk_bytes / 512) + " FLAT \"" + spec.name +
       "-flat.vmdk\" 0\n";
  std::vector<u8> raw(d.begin(), d.end());
  return blob::make_bytes(std::move(raw));
}

}  // namespace

blob::BlobRef memory_state_blob(const VmImageSpec& spec) {
  return blob::make_synthetic(hash_combine(spec.seed, 0x6d656d), spec.memory_bytes,
                              spec.mem_zero_fraction, spec.mem_compress_ratio);
}

blob::BlobRef disk_blob(const VmImageSpec& spec) {
  return blob::make_synthetic(hash_combine(spec.seed, 0x6469736b), spec.disk_bytes,
                              spec.disk_zero_fraction, spec.disk_compress_ratio);
}

Result<VmImagePaths> install_image(vfs::Vfs& fs, const std::string& dir,
                                   const VmImageSpec& spec) {
  VmImagePaths paths{dir, spec.name};
  GVFS_RETURN_IF_ERROR(fs.mkdirs(dir));
  GVFS_RETURN_IF_ERROR(fs.put_file(paths.cfg(), cfg_blob(spec)).status());
  GVFS_RETURN_IF_ERROR(fs.put_file(paths.vmss(), memory_state_blob(spec)).status());
  GVFS_RETURN_IF_ERROR(fs.put_file(paths.vmdk(), vmdk_descriptor(spec)).status());
  GVFS_RETURN_IF_ERROR(fs.put_file(paths.flat_vmdk(), disk_blob(spec)).status());
  return paths;
}

Status generate_vmss_metadata(vfs::Vfs& fs, const VmImagePaths& paths,
                              u32 zero_block_size, bool with_file_channel,
                              u32 fp_block_size, u64 fp_seed) {
  GVFS_ASSIGN_OR_RETURN(blob::BlobRef vmss, fs.get_file(paths.vmss()));
  meta::MetaFile m = meta::MetaFile::generate(
      *vmss, zero_block_size,
      with_file_channel ? meta::file_channel_actions() : std::vector<meta::Action>{},
      fp_block_size, fp_seed);
  GVFS_RETURN_IF_ERROR(
      fs.put_file(meta::MetaFile::meta_path_for(paths.vmss()), m.serialize()).status());
  return Status::ok();
}

}  // namespace gvfs::vm
