// VM image model: the on-server representation of a VMware-GSX-style hosted
// VM — a small .cfg, a memory state file (.vmss) written at suspend, and a
// plain-mode virtual disk (.vmdk descriptor + -flat.vmdk extent). Content is
// synthetic (seeded, with realistic zero fractions and compressibility) so a
// 320 MB / 1.6 GB image costs almost nothing until read.
#pragma once

#include <string>

#include "blob/blob.h"
#include "common/status.h"
#include "vfs/vfs.h"

namespace gvfs::vm {

struct VmImageSpec {
  std::string name = "vm";
  u64 memory_bytes = 320_MiB;
  u64 disk_bytes = u64{1638} * 1_MiB;  // 1.6 GB
  // Post-boot suspended images are mostly zero pages (§3.2.2: 60452 of
  // 65750 8 KB reads of a 512 MB image were all-zero ≈ 92 %).
  double mem_zero_fraction = 0.92;
  double mem_compress_ratio = 3.0;  // of non-zero pages
  double disk_zero_fraction = 0.55;  // unallocated guest blocks
  double disk_compress_ratio = 2.2;
  u64 seed = 42;
};

// Standard file names within the image directory.
struct VmImagePaths {
  std::string dir;
  std::string name;

  [[nodiscard]] std::string cfg() const { return dir + "/" + name + ".cfg"; }
  [[nodiscard]] std::string vmss() const { return dir + "/" + name + ".vmss"; }
  [[nodiscard]] std::string vmdk() const { return dir + "/" + name + ".vmdk"; }
  [[nodiscard]] std::string flat_vmdk() const {
    return dir + "/" + name + "-flat.vmdk";
  }
};

// Create the image files on a filesystem (an image server export or a local
// disk). Returns the paths.
Result<VmImagePaths> install_image(vfs::Vfs& fs, const std::string& dir,
                                   const VmImageSpec& spec);

// The memory-state content blob an installed image has (deterministic from
// the spec; used by tests and meta-data generation).
blob::BlobRef memory_state_blob(const VmImageSpec& spec);
blob::BlobRef disk_blob(const VmImageSpec& spec);

// Middleware pre-processing (§3.2.2): scan the .vmss and drop a meta-data
// file with a zero map at `zero_block_size` plus the file-channel action
// list next to it. `fp_block_size` > 0 additionally embeds a per-block
// content-fingerprint table (seeded with `fp_seed`) for the proxy's
// content-addressed dedup; 0 keeps the meta file byte-identical to the
// pre-dedup (version-1) encoding.
Status generate_vmss_metadata(vfs::Vfs& fs, const VmImagePaths& paths,
                              u32 zero_block_size = 8_KiB,
                              bool with_file_channel = true,
                              u32 fp_block_size = 0,
                              u64 fp_seed = blob::kDefaultFingerprintSeed);

}  // namespace gvfs::vm
