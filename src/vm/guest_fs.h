// Guest filesystem layout model: maps the files an in-VM application touches
// onto extents of the virtual disk, so guest-level file I/O becomes .vmdk
// block traffic at the VM monitor — the only thing GVFS ever sees.
//
// Two allocation modes per file:
//  * contiguous — one extent with a growth reserve (large streaming files,
//    ext2's best case);
//  * fragmented — a chain of small extents scattered deterministically over
//    the data region (an aged filesystem full of small files). Fragmented
//    files defeat read coalescing, which is what makes cold small-file
//    workloads over a WAN as expensive as the paper measured.
#pragma once

#include <string>
#include <unordered_map>

#include "blob/blob.h"
#include "common/status.h"
#include "sim/kernel.h"
#include "vm/vm_monitor.h"

namespace gvfs::vm {

struct GuestFsConfig {
  u64 data_base = 256_MiB;
  u64 data_limit = u64{1400} * 1_MiB;
  u64 frag_extent = 8_KiB;  // extent size for fragmented files
};

class GuestFs {
 public:
  explicit GuestFs(VmMonitor& vm, GuestFsConfig cfg = {});
  GuestFs(VmMonitor& vm, u64 data_base, u64 data_limit)
      : GuestFs(vm, GuestFsConfig{data_base, data_limit, 8_KiB}) {}

  // Declare a file. `initial_size` bytes are considered already on disk
  // (part of the installed image); `reserve` caps contiguous growth
  // (default: generous). Fragmented files grow extent by extent.
  Status add_file(const std::string& name, u64 initial_size, u64 reserve = 0,
                  bool fragmented = false);

  [[nodiscard]] bool exists(const std::string& name) const {
    return files_.count(name) != 0;
  }
  [[nodiscard]] u64 size(const std::string& name) const;

  Result<blob::BlobRef> read(sim::Process& p, const std::string& name, u64 offset,
                             u64 len);
  Result<blob::BlobRef> read_all(sim::Process& p, const std::string& name);
  Status write(sim::Process& p, const std::string& name, u64 offset,
               const blob::BlobRef& data);
  Status append(sim::Process& p, const std::string& name, const blob::BlobRef& data);
  Status truncate(const std::string& name, u64 size);
  Status remove(const std::string& name);

  // Guest fsync / journal commit.
  Status sync(sim::Process& p) { return vm_.sync(p); }

  // Raw metadata-region read (inode/directory block models used by workload
  // populations); goes through the guest cache like any disk block.
  Status vm_read_meta(sim::Process& p, u64 disk_off, u64 len) {
    return vm_.disk_read(p, disk_off, len).status();
  }

  [[nodiscard]] VmMonitor& vm() { return vm_; }
  [[nodiscard]] std::size_t file_count() const { return files_.size(); }

 private:
  struct GFile {
    bool fragmented = false;
    u64 size = 0;
    // contiguous:
    u64 disk_off = 0;
    u64 capacity = 0;
    // fragmented: global slot sequence indices [first_slot, first_slot+extents)
    u64 first_slot = 0;
    u64 extents = 0;
  };

  // Disk offset of global fragment slot-sequence index i (a bijection onto
  // the fragment area, scattering consecutive slots far apart).
  [[nodiscard]] u64 slot_offset_(u64 slot_index) const;

  // Per-segment I/O for fragmented files.
  Result<blob::BlobRef> frag_read_(sim::Process& p, const GFile& f, u64 offset, u64 len);
  Status frag_write_(sim::Process& p, GFile& f, u64 offset, const blob::BlobRef& data);
  Status ensure_extents_(GFile& f, u64 needed_bytes);

  VmMonitor& vm_;
  GuestFsConfig cfg_;
  std::unordered_map<std::string, GFile> files_;
  u64 contig_next_;   // bump pointer for contiguous files (low half)
  u64 frag_slots_;    // number of fragment slots (high half)
  u64 frag_next_slot_ = 0;
  u64 frag_base_;
  u64 stride_;        // odd stride coprime with frag_slots_
};

}  // namespace gvfs::vm
