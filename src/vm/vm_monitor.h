// Hosted VM monitor model (VMware GSX-style). The VMM stores machine state
// in regular files — which is exactly the property GVFS exploits — so its
// interaction with storage is: resume = read .cfg + the entire .vmss
// sequentially; run = guest disk I/O against the .vmdk (through the guest's
// own page cache, optionally redirected to a redo log); suspend = write the
// whole .vmss back. State files may live on different mounts (clones keep a
// local memory copy while the virtual disk stays symlinked to the image
// mount).
#pragma once

#include <memory>
#include <string>

#include "blob/blob.h"
#include "common/metrics.h"
#include "sim/kernel.h"
#include "vfs/buffer_cache.h"
#include "vfs/fs_session.h"
#include "vm/redo_log.h"

namespace gvfs::vm {

struct VmmConfig {
  u64 io_chunk = 64_KiB;              // VMM state-file read/write granularity
  double mem_load_bps = 150.0 * 1_MiB;  // CPU to rebuild the memory image
  double mem_save_bps = 150.0 * 1_MiB;
  SimDuration device_init = 1500 * kMillisecond;  // device state restore
  u64 guest_cache_bytes = 96_MiB;     // guest page cache share
  u32 guest_page = 4_KiB;
  SimDuration guest_io_cpu = 15 * kMicrosecond;  // virtualized I/O exit cost
};

class VmMonitor {
 public:
  explicit VmMonitor(VmmConfig cfg = {});

  // Wire the state files. `state_fs` holds .cfg/.vmss; `disk_fs` holds the
  // flat virtual disk (often a different mount for clones).
  void attach(vfs::FsSession& state_fs, std::string cfg_path, std::string vmss_path,
              vfs::FsSession& disk_fs, std::string disk_path);

  // Non-persistent mode: guest writes divert to a redo log.
  void enable_redo_log(std::unique_ptr<RedoLog> log) { redo_ = std::move(log); }
  [[nodiscard]] RedoLog* redo_log() { return redo_.get(); }

  // Read config + the whole memory state (the paper: "resuming a VMware VM
  // requires reading the entire memory state file").
  Status resume(sim::Process& p);

  // Write the full memory state back and flush (suspend of a persistent VM).
  Status suspend(sim::Process& p, blob::BlobRef new_memory_state);

  [[nodiscard]] bool resumed() const { return resumed_; }

  // ---- guest disk I/O ------------------------------------------------------
  Result<blob::BlobRef> disk_read(sim::Process& p, u64 offset, u64 len);
  Status disk_write(sim::Process& p, u64 offset, blob::BlobRef data);
  // Guest fsync / journal commit: push guest-cached dirty pages to the host
  // and flush the host session.
  Status sync(sim::Process& p);

  // ---- observability -------------------------------------------------------
  [[nodiscard]] vfs::BufferCache& guest_cache() { return *guest_cache_; }
  [[nodiscard]] u64 host_reads() const { return host_reads_.value(); }
  [[nodiscard]] u64 host_read_bytes() const { return host_read_bytes_.value(); }
  [[nodiscard]] u64 host_write_bytes() const { return host_write_bytes_.value(); }
  [[nodiscard]] u64 vmss_bytes_read() const { return vmss_bytes_read_.value(); }

  void register_metrics(metrics::Registry& r, const std::string& prefix) const {
    r.register_counter(prefix + "host_reads", &host_reads_);
    r.register_counter(prefix + "host_read_bytes", &host_read_bytes_);
    r.register_counter(prefix + "host_write_bytes", &host_write_bytes_);
    r.register_counter(prefix + "vmss_bytes_read", &vmss_bytes_read_);
  }

 private:
  // Guest-cache writeback: dirty page goes to redo log or the virtual disk.
  void writeback_page_(sim::Process& p, u64 page, const blob::BlobRef& data);

  VmmConfig cfg_;
  vfs::FsSession* state_fs_ = nullptr;
  vfs::FsSession* disk_fs_ = nullptr;
  std::string cfg_path_;
  std::string vmss_path_;
  std::string disk_path_;
  std::unique_ptr<vfs::BufferCache> guest_cache_;
  std::unique_ptr<RedoLog> redo_;
  bool resumed_ = false;
  metrics::Counter host_reads_;
  metrics::Counter host_read_bytes_;
  metrics::Counter host_write_bytes_;
  metrics::Counter vmss_bytes_read_;

  static constexpr u64 kDiskKey = 1;  // single virtual disk per VM
};

}  // namespace gvfs::vm
