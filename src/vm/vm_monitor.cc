#include "vm/vm_monitor.h"

#include <algorithm>

#include "blob/extent_store.h"

namespace gvfs::vm {

VmMonitor::VmMonitor(VmmConfig cfg) : cfg_(cfg) {
  guest_cache_ =
      std::make_unique<vfs::BufferCache>(cfg.guest_cache_bytes, cfg.guest_page);
  guest_cache_->set_writeback(
      [this](sim::Process& p, u64 /*file*/, u64 page, const blob::BlobRef& data) {
        writeback_page_(p, page, data);
      });
}

void VmMonitor::attach(vfs::FsSession& state_fs, std::string cfg_path,
                       std::string vmss_path, vfs::FsSession& disk_fs,
                       std::string disk_path) {
  state_fs_ = &state_fs;
  cfg_path_ = std::move(cfg_path);
  vmss_path_ = std::move(vmss_path);
  disk_fs_ = &disk_fs;
  disk_path_ = std::move(disk_path);
}

Status VmMonitor::resume(sim::Process& p) {
  if (state_fs_ == nullptr) return err(ErrCode::kInval, "VMM not attached");
  // Parse the configuration.
  GVFS_RETURN_IF_ERROR(state_fs_->read_all(p, cfg_path_).status());
  // Pull the entire memory state, chunk by chunk, rebuilding guest RAM.
  GVFS_ASSIGN_OR_RETURN(vfs::Attr vmss, state_fs_->stat(p, vmss_path_));
  u64 off = 0;
  while (off < vmss.size) {
    u64 n = std::min<u64>(cfg_.io_chunk, vmss.size - off);
    GVFS_ASSIGN_OR_RETURN(blob::BlobRef chunk, state_fs_->read(p, vmss_path_, off, n));
    if (chunk->size() == 0) break;
    vmss_bytes_read_.inc(chunk->size());
    p.delay(transfer_time(chunk->size(), cfg_.mem_load_bps));
    off += chunk->size();
  }
  // Restore device state / attach the disk descriptor.
  GVFS_RETURN_IF_ERROR(disk_fs_->stat(p, disk_path_).status());
  p.delay(cfg_.device_init);
  resumed_ = true;
  return Status::ok();
}

Status VmMonitor::suspend(sim::Process& p, blob::BlobRef new_memory_state) {
  if (state_fs_ == nullptr) return err(ErrCode::kInval, "VMM not attached");
  GVFS_RETURN_IF_ERROR(sync(p));
  u64 size = new_memory_state ? new_memory_state->size() : 0;
  u64 off = 0;
  while (off < size) {
    u64 n = std::min<u64>(cfg_.io_chunk, size - off);
    auto slice = std::make_shared<blob::SliceBlob>(new_memory_state, off, n);
    p.delay(transfer_time(n, cfg_.mem_save_bps));
    GVFS_RETURN_IF_ERROR(state_fs_->write(p, vmss_path_, off, slice));
    off += n;
  }
  GVFS_RETURN_IF_ERROR(state_fs_->flush(p));
  resumed_ = false;
  return Status::ok();
}

void VmMonitor::writeback_page_(sim::Process& p, u64 page, const blob::BlobRef& data) {
  if (!data || data->size() == 0) return;
  u64 offset = page * cfg_.guest_page;
  host_write_bytes_.inc(data->size());
  if (redo_) {
    (void)redo_->append(p, offset, data);
  } else {
    (void)disk_fs_->write(p, disk_path_, offset, data);
  }
}

Result<blob::BlobRef> VmMonitor::disk_read(sim::Process& p, u64 offset, u64 len) {
  if (disk_fs_ == nullptr) return err(ErrCode::kInval, "VMM not attached");
  if (len == 0) return blob::BlobRef(blob::make_zero(0));
  p.delay(cfg_.guest_io_cpu);
  blob::ExtentStore out;
  out.truncate(len);
  u64 first = offset / cfg_.guest_page;
  u64 last = (offset + len - 1) / cfg_.guest_page;

  // Walk pages, coalescing consecutive guest-cache misses into one host read.
  u64 pg = first;
  while (pg <= last) {
    auto cached = guest_cache_->lookup(kDiskKey, pg);
    if (cached) {
      u64 pg_start = pg * cfg_.guest_page;
      u64 lo = std::max(pg_start, offset);
      u64 hi = std::min({pg_start + (*cached)->size(), offset + len});
      if (lo < hi) out.write_blob(lo - offset, *cached, lo - pg_start, hi - lo);
      ++pg;
      continue;
    }
    // Miss run: extend while pages miss (and share redo-coverage class).
    bool via_redo = redo_ && redo_->covers(pg * cfg_.guest_page);
    u64 run_end = pg + 1;
    while (run_end <= last && !guest_cache_->contains(kDiskKey, run_end)) {
      bool r = redo_ && redo_->covers(run_end * cfg_.guest_page);
      if (r != via_redo) break;
      ++run_end;
    }
    u64 run_start_off = pg * cfg_.guest_page;
    u64 run_len = (run_end - pg) * cfg_.guest_page;
    blob::BlobRef data;
    if (via_redo) {
      GVFS_ASSIGN_OR_RETURN(data, redo_->read(p, run_start_off, run_len));
    } else {
      GVFS_ASSIGN_OR_RETURN(data, disk_fs_->read(p, disk_path_, run_start_off, run_len));
    }
    host_reads_.inc();
    host_read_bytes_.inc(data->size());
    for (u64 q = pg; q < run_end; ++q) {
      u64 rel = (q - pg) * cfg_.guest_page;
      if (rel >= data->size()) break;
      u64 n = std::min<u64>(cfg_.guest_page, data->size() - rel);
      guest_cache_->insert(p, kDiskKey, q,
                           std::make_shared<blob::SliceBlob>(data, rel, n),
                           /*dirty=*/false);
    }
    u64 lo = std::max(run_start_off, offset);
    u64 hi = std::min({run_start_off + data->size(), offset + len});
    if (lo < hi) out.write_blob(lo - offset, data, lo - run_start_off, hi - lo);
    pg = run_end;
  }
  return out.snapshot();
}

Status VmMonitor::disk_write(sim::Process& p, u64 offset, blob::BlobRef data) {
  if (disk_fs_ == nullptr) return err(ErrCode::kInval, "VMM not attached");
  if (!data || data->size() == 0) return Status::ok();
  p.delay(cfg_.guest_io_cpu);
  u64 len = data->size();
  u64 first = offset / cfg_.guest_page;
  u64 last = (offset + len - 1) / cfg_.guest_page;
  for (u64 pg = first; pg <= last; ++pg) {
    u64 pg_start = pg * cfg_.guest_page;
    u64 lo = std::max(pg_start, offset);
    u64 hi = std::min(pg_start + cfg_.guest_page, offset + len);
    blob::BlobRef page_data;
    if (lo == pg_start && hi - lo == cfg_.guest_page) {
      page_data = std::make_shared<blob::SliceBlob>(data, lo - offset, hi - lo);
    } else {
      // Partial page: read-modify-write through the cache hierarchy.
      auto cached = guest_cache_->lookup(kDiskKey, pg);
      blob::ExtentStore compose;
      compose.truncate(cfg_.guest_page);
      if (cached) {
        compose.write_blob(0, *cached, 0, (*cached)->size());
      } else {
        GVFS_ASSIGN_OR_RETURN(blob::BlobRef base,
                              disk_read(p, pg_start, cfg_.guest_page));
        compose.write_blob(0, base, 0, base->size());
      }
      compose.write_blob(lo - pg_start, data, lo - offset, hi - lo);
      page_data = compose.snapshot();
    }
    guest_cache_->insert(p, kDiskKey, pg, std::move(page_data), /*dirty=*/true);
  }
  return Status::ok();
}

Status VmMonitor::sync(sim::Process& p) {
  guest_cache_->flush(p);
  if (redo_) {
    GVFS_RETURN_IF_ERROR(redo_->flush(p));
  }
  return disk_fs_->flush(p);
}

}  // namespace gvfs::vm
