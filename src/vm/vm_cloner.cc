#include "vm/vm_cloner.h"

#include <algorithm>

namespace gvfs::vm {

Result<CloneResult> VmCloner::clone(sim::Process& p, vfs::FsSession& image_fs,
                                    vfs::FsSession& local_fs, const CloneConfig& cfg) {
  CloneResult out;
  std::string name = cfg.clone_name.empty() ? cfg.image.name : cfg.clone_name;
  out.clone_paths = VmImagePaths{cfg.clone_dir, name};
  GVFS_RETURN_IF_ERROR(local_fs.mkdirs(p, cfg.clone_dir));

  // 1. Copy the VM configuration file.
  SimTime t0 = p.now();
  GVFS_ASSIGN_OR_RETURN(blob::BlobRef cfg_data, image_fs.read_all(p, cfg.image.cfg()));
  GVFS_RETURN_IF_ERROR(local_fs.put(p, out.clone_paths.cfg(), cfg_data));
  SimTime t1 = p.now();
  out.timing.copy_cfg_s = to_seconds(t1 - t0);

  // 2. Copy the memory state file (the step every scenario pays differently:
  //    block-by-block over plain NFS, via the compressed file channel under
  //    GVFS, from warm caches on re-clones).
  GVFS_ASSIGN_OR_RETURN(vfs::Attr vmss, image_fs.stat(p, cfg.image.vmss()));
  GVFS_RETURN_IF_ERROR(local_fs.put(p, out.clone_paths.vmss(), blob::make_zero(0)));
  u64 off = 0;
  while (off < vmss.size) {
    u64 n = std::min<u64>(cfg.copy_chunk, vmss.size - off);
    GVFS_ASSIGN_OR_RETURN(blob::BlobRef chunk,
                          image_fs.read(p, cfg.image.vmss(), off, n));
    if (chunk->size() == 0) break;
    GVFS_RETURN_IF_ERROR(local_fs.write(p, out.clone_paths.vmss(), off, chunk));
    off += chunk->size();
  }
  GVFS_RETURN_IF_ERROR(local_fs.flush(p));
  SimTime t2 = p.now();
  out.timing.copy_mem_s = to_seconds(t2 - t1);

  // 3. Symbolic links to the virtual disk files (no data motion).
  GVFS_RETURN_IF_ERROR(
      local_fs.symlink(p, out.clone_paths.vmdk(), cfg.image.vmdk()));
  GVFS_RETURN_IF_ERROR(
      local_fs.symlink(p, out.clone_paths.flat_vmdk(), cfg.image.flat_vmdk()));
  SimTime t3 = p.now();
  out.timing.links_s = to_seconds(t3 - t2);

  // 4. Configure the clone with user-specific information.
  p.delay(cfg.configure_time);
  std::string patch = "uuid.bios = \"clone\"\ndisplayName = \"" + name + "\"\n";
  std::vector<u8> patch_raw(patch.begin(), patch.end());
  GVFS_ASSIGN_OR_RETURN(vfs::Attr cfg_attr, local_fs.stat(p, out.clone_paths.cfg()));
  GVFS_RETURN_IF_ERROR(local_fs.write(p, out.clone_paths.cfg(), cfg_attr.size,
                                      blob::make_bytes(std::move(patch_raw))));
  GVFS_RETURN_IF_ERROR(local_fs.flush(p));
  SimTime t4 = p.now();
  out.timing.configure_s = to_seconds(t4 - t3);

  // 5. Resume: memory state from the local copy, virtual disk through the
  //    symlink back to the image mount, writes into a local redo log.
  out.vm = std::make_unique<VmMonitor>(cfg.vmm);
  out.vm->attach(local_fs, out.clone_paths.cfg(), out.clone_paths.vmss(), image_fs,
                 cfg.image.flat_vmdk());
  if (cfg.use_redo_log) {
    auto redo = std::make_unique<RedoLog>(local_fs, cfg.clone_dir + "/" + name + ".redo");
    GVFS_RETURN_IF_ERROR(redo->create(p));
    out.vm->enable_redo_log(std::move(redo));
  }
  GVFS_RETURN_IF_ERROR(out.vm->resume(p));
  out.timing.resume_s = to_seconds(p.now() - t4);
  return out;
}

}  // namespace gvfs::vm
