#include "common/rng.h"

#include <cmath>

namespace gvfs {

double SplitMix64::ln_(double x) { return std::log(x); }

}  // namespace gvfs
