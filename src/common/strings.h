// String formatting helpers used by the benchmark harnesses to print
// paper-style rows (durations as m:ss / h:mm, byte counts, fixed decimals).
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace gvfs {

// "12.34" with the requested number of decimals.
std::string fmt_double(double v, int decimals = 2);

// Seconds rendered like the paper's axes: "03:25" (min:sec) or "1:07:12".
std::string fmt_mmss(double seconds);
std::string fmt_hhmm(double seconds);

// "1.6 GB", "320 MB", "8 KB".
std::string fmt_bytes(u64 bytes);

// Split "a,b,c" -> {"a","b","c"} (used for simple config strings).
std::vector<std::string> split(const std::string& s, char sep);

// Path joining with single separators: join_path("/exports", "vm1.vmss").
std::string join_path(const std::string& dir, const std::string& name);

// Basename / dirname of a slash-separated virtual path.
std::string path_basename(const std::string& path);
std::string path_dirname(const std::string& path);

bool starts_with(const std::string& s, const std::string& prefix);
bool ends_with(const std::string& s, const std::string& suffix);

}  // namespace gvfs
