// Core scalar types and byte-size literals shared across all GVFS modules.
#pragma once

#include <cstdint>
#include <cstddef>

namespace gvfs {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

// Byte-size literals: 4_KiB, 8_MiB, 2_GiB ...
constexpr u64 operator""_KiB(unsigned long long v) { return v << 10; }
constexpr u64 operator""_MiB(unsigned long long v) { return v << 20; }
constexpr u64 operator""_GiB(unsigned long long v) { return v << 30; }

// Simulated time is kept in integral nanoseconds to stay exact under
// accumulation; SimTime is a point, SimDuration an interval.
using SimTime = i64;      // nanoseconds since simulation start
using SimDuration = i64;  // nanoseconds

constexpr SimDuration kNanosecond = 1;
constexpr SimDuration kMicrosecond = 1000;
constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
constexpr SimDuration kSecond = 1000 * kMillisecond;

constexpr double to_seconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}
constexpr SimDuration from_seconds(double s) {
  return static_cast<SimDuration>(s * static_cast<double>(kSecond));
}
constexpr SimDuration from_millis(double ms) {
  return static_cast<SimDuration>(ms * static_cast<double>(kMillisecond));
}

// Time to move `bytes` at `bytes_per_sec` throughput (rounded up to 1 ns).
constexpr SimDuration transfer_time(u64 bytes, double bytes_per_sec) {
  if (bytes == 0 || bytes_per_sec <= 0.0) return 0;
  double secs = static_cast<double>(bytes) / bytes_per_sec;
  SimDuration d = from_seconds(secs);
  return d > 0 ? d : 1;
}

}  // namespace gvfs
