// Deterministic pseudo-random number generation. All synthetic content and
// workload jitter in the repository derives from seeded SplitMix64 streams so
// every experiment is bit-reproducible.
#pragma once

#include "common/hash.h"
#include "common/types.h"

namespace gvfs {

// SplitMix64: tiny, fast, passes BigCrush; ideal for seeding and for
// deterministic per-offset content synthesis.
class SplitMix64 {
 public:
  explicit SplitMix64(u64 seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  u64 next() {
    state_ += 0x9e3779b97f4a7c15ULL;
    return mix64(state_);
  }

  // Uniform in [0, bound). bound == 0 yields 0.
  u64 next_below(u64 bound) {
    if (bound == 0) return 0;
    // Multiply-shift rejection-free mapping (slight bias acceptable here).
    return static_cast<u64>((static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Exponentially distributed with the given mean (for service-time jitter).
  double next_exponential(double mean) {
    double u = next_double();
    if (u >= 1.0) u = 0.9999999999999999;
    // -mean * ln(1-u)
    double x = 1.0 - u;
    // ln via series is overkill; use std library through a small wrapper to
    // keep the header light-weight.
    return -mean * ln_(x);
  }

  u64 state() const { return state_; }

 private:
  static double ln_(double x);
  u64 state_;
};

// Stateless deterministic value for (seed, index): the content of synthetic
// blob byte ranges is derived from this so any range can be regenerated
// without storing it.
constexpr u64 stateless_rand(u64 seed, u64 index) {
  return mix64(seed + index * 0x9e3779b97f4a7c15ULL);
}

}  // namespace gvfs
