#include "common/strings.h"

#include <cmath>
#include <cstdio>

namespace gvfs {

std::string fmt_double(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string fmt_mmss(double seconds) {
  long total = std::lround(seconds);
  long m = total / 60, s = total % 60;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%02ld:%02ld", m, s);
  return buf;
}

std::string fmt_hhmm(double seconds) {
  long total = std::lround(seconds);
  long h = total / 3600, m = (total % 3600) / 60, s = total % 60;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%ld:%02ld:%02ld", h, m, s);
  return buf;
}

std::string fmt_bytes(u64 bytes) {
  char buf[32];
  if (bytes >= 1_GiB) {
    std::snprintf(buf, sizeof(buf), "%.1f GB", static_cast<double>(bytes) / (1_GiB));
  } else if (bytes >= 1_MiB) {
    std::snprintf(buf, sizeof(buf), "%.0f MB", static_cast<double>(bytes) / (1_MiB));
  } else if (bytes >= 1_KiB) {
    std::snprintf(buf, sizeof(buf), "%.0f KB", static_cast<double>(bytes) / (1_KiB));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join_path(const std::string& dir, const std::string& name) {
  if (dir.empty()) return name;
  if (dir.back() == '/') return dir + name;
  return dir + "/" + name;
}

std::string path_basename(const std::string& path) {
  std::size_t pos = path.find_last_of('/');
  return pos == std::string::npos ? path : path.substr(pos + 1);
}

std::string path_dirname(const std::string& path) {
  std::size_t pos = path.find_last_of('/');
  if (pos == std::string::npos) return "";
  if (pos == 0) return "/";
  return path.substr(0, pos);
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace gvfs
