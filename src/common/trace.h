// Per-RPC trace spans across the proxy cascade.
//
// The whole synchronous RPC chain — kernel client → loopback → client proxy
// → retry → fault → SSH tunnel → (LAN L2 proxy →) server proxy → nfsd —
// executes inside the *caller's* simulation process, so a span opened by the
// client is unambiguously "the current RPC" for every layer below it, even
// though the proxies remap xids on their upstream hops. RpcTracer therefore
// keys open spans on the sim::Process address (a stack per process: nested
// client calls, e.g. a writeback triggered mid-read, nest correctly), and
// every layer annotates the innermost open span of its process with
// (virtual-time, layer, tag) events: retry retransmits, injected faults,
// cache hit/miss at each proxy level, DRC outcome at the server.
//
// Closed spans land in a bounded FIFO ring; overflow evicts the oldest and
// counts it. Spans render to JSON only (Testbed::dump_trace_json) — nothing
// reaches stdout, keeping the simulated benches byte-identical.
#pragma once

#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/types.h"

namespace gvfs::trace {

struct SpanEvent {
  SimTime at = 0;
  std::string layer;  // "retry", "fault", "node0-proxy", "server", ...
  std::string tag;    // "retransmit#1", "block_cache_miss", "drc_hit", ...
};

struct TraceSpan {
  u32 xid = 0;
  u32 proc = 0;
  std::string op;  // client-side operation name ("READ", "MOUNT", ...)
  SimTime start = 0;
  SimTime end = 0;
  bool ok = false;
  std::vector<SpanEvent> events;
};

class RpcTracer {
 public:
  explicit RpcTracer(std::size_t capacity = 256) : capacity_(capacity) {}

  // Open a span for the RPC the process `ctx` is about to issue.
  void begin(const void* ctx, u32 xid, u32 proc, std::string op, SimTime now);
  // Attach an event to the innermost open span of `ctx` (no-op when that
  // process has no span open — e.g. untraced harness traffic).
  void annotate(const void* ctx, std::string layer, std::string tag, SimTime now);
  // Close the innermost open span and move it to the ring.
  void end(const void* ctx, SimTime now, bool ok);

  [[nodiscard]] const std::deque<TraceSpan>& spans() const { return ring_; }
  [[nodiscard]] u64 spans_dropped() const { return dropped_.value(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  // Render the ring as a JSON array of span objects.
  [[nodiscard]] std::string to_json() const;

  void clear();

  void register_metrics(metrics::Registry& r, const std::string& prefix) const;

 private:
  std::size_t capacity_;
  // sim::Process address -> stack of open spans (innermost last).
  std::unordered_map<const void*, std::vector<TraceSpan>> open_;
  std::deque<TraceSpan> ring_;
  metrics::Counter dropped_;
};

}  // namespace gvfs::trace
