// Small, dependency-free hash utilities. The proxy disk cache indexes frames
// by a hash of (file handle, block offset); determinism across runs matters
// for reproducible experiments, so we use fixed algorithms (FNV-1a and a
// SplitMix-style finalizer) rather than std::hash.
#pragma once

#include <cstring>
#include <span>
#include <string_view>

#include "common/types.h"

namespace gvfs {

constexpr u64 kFnvOffset = 14695981039346656037ULL;
constexpr u64 kFnvPrime = 1099511628211ULL;

constexpr u64 fnv1a64(std::string_view data, u64 seed = kFnvOffset) {
  u64 h = seed;
  for (char c : data) {
    h ^= static_cast<u8>(c);
    h *= kFnvPrime;
  }
  return h;
}

inline u64 fnv1a64(std::span<const u8> data, u64 seed = kFnvOffset) {
  u64 h = seed;
  for (u8 c : data) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

// FNV-1a state after absorbing `len` zero bytes starting from `state`: a
// zero byte leaves the xor untouched, so the whole run collapses to
// state * kFnvPrime^len (mod 2^64), computed here by square-and-multiply.
// Lets ZeroBlob fingerprint arbitrary ranges in O(log len).
constexpr u64 fnv1a64_zero_run(u64 state, u64 len) {
  u64 p = kFnvPrime;
  while (len > 0) {
    if (len & 1) state *= p;
    p *= p;
    len >>= 1;
  }
  return state;
}

// Stafford mix13 — a high-quality 64-bit finalizer (used by SplitMix64).
constexpr u64 mix64(u64 x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

constexpr u64 hash_combine(u64 a, u64 b) {
  return mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

}  // namespace gvfs
