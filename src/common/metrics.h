// Unified observability registry (the paper's §4 evaluation is entirely
// per-layer telemetry: proxy hit rates, cascade traffic, retransmissions,
// outage time — this is where those numbers live).
//
// Components own their instruments by value (a Counter is exactly a u64, a
// Gauge a u64, a Histogram a RunningStat), so converting a legacy
// `u64 hits_ = 0;` member costs nothing on the hot path and existing
// accessors keep their signatures by returning `hits_.value()`. A Registry
// is a *view*: components register `const` pointers to their instruments
// under hierarchical dot-separated ids ("node0.block_cache.hits"), and a
// snapshot reads them all at once. Ids are kept in sorted order so the JSON
// rendering is deterministic (and safe to iterate under the repo's
// unordered-iteration lint rule).
//
// Nothing here prints to stdout: snapshots render to JSON strings that the
// bench harness writes into BENCH_*.json and Testbed dumps to files.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace gvfs::metrics {

// Monotonically increasing event count.
class Counter {
 public:
  void inc(u64 d = 1) { v_ += d; }
  [[nodiscard]] u64 value() const { return v_; }
  void reset() { v_ = 0; }

 private:
  u64 v_ = 0;
};

// Instantaneous level (resident bytes, dirty blocks, queue depth).
class Gauge {
 public:
  void set(u64 v) { v_ = v; }
  void add(u64 d) { v_ += d; }
  void sub(u64 d) { v_ -= d; }
  [[nodiscard]] u64 value() const { return v_; }
  void reset() { v_ = 0; }

 private:
  u64 v_ = 0;
};

// Sample distribution backed by the streaming RunningStat accumulator
// (count/sum/mean/stddev/min/max without storing samples).
class Histogram {
 public:
  void observe(double x) { stat_.add(x); }
  [[nodiscard]] const RunningStat& stat() const { return stat_; }
  void reset() { stat_.reset(); }

 private:
  RunningStat stat_;
};

// A named view over instruments owned elsewhere. Registration stores raw
// pointers: the owning component must outlive the registry reads (in the
// Testbed the registry member is declared before every component it views).
class Registry {
 public:
  // id -> rendered JSON value ("42" or a {"count":...} object literal).
  using Snapshot = std::vector<std::pair<std::string, std::string>>;

  void register_counter(std::string id, const Counter* c);
  void register_gauge(std::string id, const Gauge* g);
  void register_histogram(std::string id, const Histogram* h);

  // Read every registered instrument, sorted by id.
  [[nodiscard]] Snapshot snapshot() const;

  // Render a snapshot as one JSON object: {"a.b": 1, "c.d": {...}}.
  [[nodiscard]] static std::string render_json(const Snapshot& snap);
  [[nodiscard]] std::string to_json() const { return render_json(snapshot()); }

  [[nodiscard]] std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

 private:
  std::map<std::string, const Counter*> counters_;
  std::map<std::string, const Gauge*> gauges_;
  std::map<std::string, const Histogram*> histograms_;
};

// Render a histogram's stats as a JSON object literal.
[[nodiscard]] std::string histogram_json(const RunningStat& s);

}  // namespace gvfs::metrics
