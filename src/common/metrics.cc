#include "common/metrics.h"

#include <cstdio>

namespace gvfs::metrics {

namespace {

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::string histogram_json(const RunningStat& s) {
  std::string out = "{\"count\": " + std::to_string(s.count());
  out += ", \"sum\": " + format_double(s.sum());
  out += ", \"mean\": " + format_double(s.mean());
  out += ", \"stddev\": " + format_double(s.stddev());
  out += ", \"min\": " + format_double(s.min());
  out += ", \"max\": " + format_double(s.max());
  out += "}";
  return out;
}

void Registry::register_counter(std::string id, const Counter* c) {
  counters_[std::move(id)] = c;
}

void Registry::register_gauge(std::string id, const Gauge* g) {
  gauges_[std::move(id)] = g;
}

void Registry::register_histogram(std::string id, const Histogram* h) {
  histograms_[std::move(id)] = h;
}

Registry::Snapshot Registry::snapshot() const {
  // The three maps are each sorted; a three-way merge keeps the combined
  // snapshot sorted by id without re-sorting.
  Snapshot out;
  out.reserve(size());
  auto c = counters_.begin();
  auto g = gauges_.begin();
  auto h = histograms_.begin();
  while (c != counters_.end() || g != gauges_.end() || h != histograms_.end()) {
    const std::string* best = nullptr;
    int which = -1;
    if (c != counters_.end()) {
      best = &c->first;
      which = 0;
    }
    if (g != gauges_.end() && (best == nullptr || g->first < *best)) {
      best = &g->first;
      which = 1;
    }
    if (h != histograms_.end() && (best == nullptr || h->first < *best)) {
      which = 2;
    }
    if (which == 0) {
      out.emplace_back(c->first, std::to_string(c->second->value()));
      ++c;
    } else if (which == 1) {
      out.emplace_back(g->first, std::to_string(g->second->value()));
      ++g;
    } else {
      out.emplace_back(h->first, histogram_json(h->second->stat()));
      ++h;
    }
  }
  return out;
}

std::string Registry::render_json(const Snapshot& snap) {
  std::string out = "{";
  bool first = true;
  for (const auto& [id, value] : snap) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + id + "\": " + value;
  }
  out += "}";
  return out;
}

}  // namespace gvfs::metrics
