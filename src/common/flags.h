// Minimal command-line flag parser for the repository's tools: supports
// --name=value and --name value forms, typed bindings with defaults, and
// generated --help text. No external dependencies.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace gvfs {

class FlagParser {
 public:
  FlagParser(std::string program, std::string description)
      : program_(std::move(program)), description_(std::move(description)) {}

  // Bindings keep pointers to caller storage pre-loaded with defaults.
  void add_string(const std::string& name, std::string* out, const std::string& help);
  void add_u64(const std::string& name, u64* out, const std::string& help);
  void add_u32(const std::string& name, u32* out, const std::string& help);
  void add_double(const std::string& name, double* out, const std::string& help);
  // Bools accept --flag, --flag=true/false, --flag=1/0.
  void add_bool(const std::string& name, bool* out, const std::string& help);

  // Parse argv (excluding argv[0]). Unknown flags or bad values fail.
  // Positional (non-flag) arguments land in positionals().
  Status parse(int argc, const char* const* argv);

  [[nodiscard]] const std::vector<std::string>& positionals() const {
    return positionals_;
  }
  [[nodiscard]] bool help_requested() const { return help_requested_; }
  [[nodiscard]] std::string usage() const;

 private:
  enum class Kind { kString, kU64, kU32, kDouble, kBool };
  struct Flag {
    Kind kind;
    void* out;
    std::string help;
    std::string default_repr;
  };

  void add_(const std::string& name, Kind kind, void* out, const std::string& help,
            std::string default_repr);
  Status set_(const std::string& name, const std::string& value);

  std::string program_;
  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positionals_;
  bool help_requested_ = false;
};

}  // namespace gvfs
