// MutationEpoch / YieldGuard: the dynamic half of the yield-point analysis
// (tools/lint/analyzer.h, DESIGN.md §5.8).
//
// The static analyzer proves scopes yield-free: between two statements with
// no may-yield call, no other fiber can run, so member containers cannot
// change underneath. MutationEpoch makes that proof checkable at runtime: a
// container's owner bumps the epoch on every structural mutation (insert,
// erase, clear, splice), and a YieldGuard placed across an analyzer-proven
// yield-free scope asserts the epoch did not move. If a new yield point
// sneaks into such a scope (and past the committed yield-model golden), the
// guard fires deterministically in debug runs instead of the bug surfacing
// as a heisenbug iterator invalidation.
//
// Both types compile to nothing in release builds. Like GVFS_DEADLOCK_CHECK,
// the checking is always on in debug builds and can be forced for any build
// type with -DGVFS_YIELD_CHECK=1.
#pragma once

#include <cassert>

#include "common/types.h"

#if !defined(GVFS_YIELD_CHECK) && !defined(NDEBUG)
#define GVFS_YIELD_CHECK 1
#endif

namespace gvfs {

// Structural-mutation counter for one container (or one family of containers
// that the same invariant covers). Zero-cost in release builds.
class MutationEpoch {
 public:
  void bump() {
#ifdef GVFS_YIELD_CHECK
    ++n_;
#endif
  }
  [[nodiscard]] u64 value() const {
#ifdef GVFS_YIELD_CHECK
    return n_;
#else
    return 0;
#endif
  }

 private:
#ifdef GVFS_YIELD_CHECK
  u64 n_ = 0;
#endif
};

// RAII assertion that a scope the static analyzer proved yield-free really
// observed no structural mutation of the guarded container. Place it where a
// raw reference/iterator into the container stays live and correctness
// depends on no other fiber running.
class YieldGuard {
 public:
  explicit YieldGuard(const MutationEpoch& e) {
#ifdef GVFS_YIELD_CHECK
    e_ = &e;
    at_ = e.value();
#else
    (void)e;
#endif
  }
  ~YieldGuard() {
#ifdef GVFS_YIELD_CHECK
    assert(e_->value() == at_ &&
           "container mutated inside an analyzer-proven yield-free scope");
#endif
  }
  YieldGuard(const YieldGuard&) = delete;
  YieldGuard& operator=(const YieldGuard&) = delete;

 private:
#ifdef GVFS_YIELD_CHECK
  const MutationEpoch* e_ = nullptr;
  u64 at_ = 0;
#endif
};

}  // namespace gvfs
