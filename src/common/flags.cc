#include "common/flags.h"

#include <cstdlib>
#include <sstream>

namespace gvfs {

void FlagParser::add_(const std::string& name, Kind kind, void* out,
                      const std::string& help, std::string default_repr) {
  flags_[name] = Flag{kind, out, help, std::move(default_repr)};
}

void FlagParser::add_string(const std::string& name, std::string* out,
                            const std::string& help) {
  add_(name, Kind::kString, out, help, *out);
}

void FlagParser::add_u64(const std::string& name, u64* out, const std::string& help) {
  add_(name, Kind::kU64, out, help, std::to_string(*out));
}

void FlagParser::add_u32(const std::string& name, u32* out, const std::string& help) {
  add_(name, Kind::kU32, out, help, std::to_string(*out));
}

void FlagParser::add_double(const std::string& name, double* out,
                            const std::string& help) {
  add_(name, Kind::kDouble, out, help, std::to_string(*out));
}

void FlagParser::add_bool(const std::string& name, bool* out, const std::string& help) {
  add_(name, Kind::kBool, out, help, *out ? "true" : "false");
}

Status FlagParser::set_(const std::string& name, const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) return err(ErrCode::kInval, "unknown flag --" + name);
  Flag& f = it->second;
  char* end = nullptr;
  switch (f.kind) {
    case Kind::kString:
      *static_cast<std::string*>(f.out) = value;
      return Status::ok();
    case Kind::kU64: {
      u64 v = std::strtoull(value.c_str(), &end, 0);
      if (end == nullptr || *end != '\0' || value.empty()) {
        return err(ErrCode::kInval, "--" + name + " expects an integer");
      }
      *static_cast<u64*>(f.out) = v;
      return Status::ok();
    }
    case Kind::kU32: {
      u64 v = std::strtoull(value.c_str(), &end, 0);
      if (end == nullptr || *end != '\0' || value.empty() || v > 0xffffffffULL) {
        return err(ErrCode::kInval, "--" + name + " expects a 32-bit integer");
      }
      *static_cast<u32*>(f.out) = static_cast<u32>(v);
      return Status::ok();
    }
    case Kind::kDouble: {
      double v = std::strtod(value.c_str(), &end);
      if (end == nullptr || *end != '\0' || value.empty()) {
        return err(ErrCode::kInval, "--" + name + " expects a number");
      }
      *static_cast<double*>(f.out) = v;
      return Status::ok();
    }
    case Kind::kBool: {
      if (value == "true" || value == "1" || value.empty()) {
        *static_cast<bool*>(f.out) = true;
      } else if (value == "false" || value == "0") {
        *static_cast<bool*>(f.out) = false;
      } else {
        return err(ErrCode::kInval, "--" + name + " expects true/false");
      }
      return Status::ok();
    }
  }
  return err(ErrCode::kInternal);
}

Status FlagParser::parse(int argc, const char* const* argv) {
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      positionals_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    std::string name = body, value;
    bool has_value = false;
    if (auto eq = body.find('='); eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
      has_value = true;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) return err(ErrCode::kInval, "unknown flag --" + name);
    if (!has_value && it->second.kind != Kind::kBool) {
      if (i + 1 >= argc) return err(ErrCode::kInval, "--" + name + " needs a value");
      value = argv[++i];
    }
    GVFS_RETURN_IF_ERROR(set_(name, value));
  }
  return Status::ok();
}

std::string FlagParser::usage() const {
  std::ostringstream out;
  out << program_ << " — " << description_ << "\n\nflags:\n";
  for (const auto& [name, f] : flags_) {
    out << "  --" << name << "  " << f.help << " (default: " << f.default_repr
        << ")\n";
  }
  return out.str();
}

}  // namespace gvfs
