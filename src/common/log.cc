#include "common/log.h"

#include <atomic>
#include <cstdio>

namespace gvfs {
namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* level_tag(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarn: return "W";
    case LogLevel::kError: return "E";
    case LogLevel::kOff: return "-";
  }
  return "?";
}
}  // namespace

LogLevel Logger::level() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void Logger::set_level(LogLevel lvl) { g_level.store(static_cast<int>(lvl), std::memory_order_relaxed); }

void Logger::write(LogLevel lvl, std::string_view facility, std::string_view msg) {
  std::fprintf(stderr, "[%s %.*s] %.*s\n", level_tag(lvl), static_cast<int>(facility.size()),
               facility.data(), static_cast<int>(msg.size()), msg.data());
}

}  // namespace gvfs
