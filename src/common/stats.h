// Streaming statistics accumulator used by resource models and experiment
// harnesses (mean / min / max / variance without storing samples).
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/types.h"

namespace gvfs {

class RunningStat {
 public:
  void add(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  [[nodiscard]] u64 count() const { return n_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }

  void reset() { *this = RunningStat(); }

 private:
  u64 n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace gvfs
