// Lightweight Status / Result<T> error propagation without exceptions on the
// hot path. Error codes deliberately mirror the NFSv3 error space so protocol
// layers can map them 1:1 onto the wire.
#pragma once

#include <cassert>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace gvfs {

enum class ErrCode : int {
  kOk = 0,
  kPerm = 1,          // not owner
  kNoEnt = 2,         // no such file or directory
  kIo = 5,            // hard I/O error
  kAccess = 13,       // permission denied
  kExist = 17,        // file exists
  kNotDir = 20,       // not a directory
  kIsDir = 21,        // is a directory
  kInval = 22,        // invalid argument
  kFBig = 27,         // file too large
  kNoSpc = 28,        // no space on device
  kRoFs = 30,         // read-only file system
  kNameTooLong = 63,  // name too long
  kNotEmpty = 66,     // directory not empty
  kStale = 70,        // stale file handle
  kBadHandle = 10001,
  kNotSupported = 10004,
  kBadXdr = 20001,    // XDR decode failure
  kRpcMismatch = 20002,
  kAuthError = 20003,
  kTimeout = 20004,
  kClosed = 20005,    // channel/session shut down
  kInternal = 29999,
};

[[nodiscard]] const char* err_name(ErrCode c);

// A success-or-error value; carries an optional human-readable message.
// [[nodiscard]]: silently dropping a Status is how user-level file systems
// historically lost consistency; discard deliberately with (void) and a
// comment, or propagate.
class [[nodiscard]] Status {
 public:
  Status() : code_(ErrCode::kOk) {}
  explicit Status(ErrCode c, std::string msg = {})
      : code_(c), msg_(std::move(msg)) {}

  static Status ok() { return Status(); }

  [[nodiscard]] bool is_ok() const { return code_ == ErrCode::kOk; }
  explicit operator bool() const { return is_ok(); }
  [[nodiscard]] ErrCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return msg_; }
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  ErrCode code_;
  std::string msg_;
};

inline Status err(ErrCode c, std::string msg = {}) {
  return Status(c, std::move(msg));
}

// Result<T>: either a value or a non-OK Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}  // NOLINT implicit by design
  Result(Status s) : v_(std::move(s)) {      // NOLINT implicit by design
    assert(!std::get<Status>(v_).is_ok() && "Result from OK status");
  }
  Result(ErrCode c, std::string msg = {}) : v_(Status(c, std::move(msg))) {}

  [[nodiscard]] bool is_ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return is_ok(); }

  [[nodiscard]] Status status() const {
    return is_ok() ? Status::ok() : std::get<Status>(v_);
  }
  [[nodiscard]] ErrCode code() const {
    return is_ok() ? ErrCode::kOk : std::get<Status>(v_).code();
  }

  T& value() & {
    assert(is_ok());
    return std::get<T>(v_);
  }
  const T& value() const& {
    assert(is_ok());
    return std::get<T>(v_);
  }
  T&& value() && {
    assert(is_ok());
    return std::get<T>(std::move(v_));
  }
  T value_or(T alt) const {
    return is_ok() ? std::get<T>(v_) : std::move(alt);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> v_;
};

// Propagate errors up the call stack:  GVFS_RETURN_IF_ERROR(fn());
#define GVFS_RETURN_IF_ERROR(expr)              \
  do {                                          \
    ::gvfs::Status _st = (expr);                \
    if (!_st.is_ok()) return _st;               \
  } while (0)

// Bind or propagate:  GVFS_ASSIGN_OR_RETURN(auto v, compute());
#define GVFS_CONCAT_INNER(a, b) a##b
#define GVFS_CONCAT(a, b) GVFS_CONCAT_INNER(a, b)
#define GVFS_ASSIGN_OR_RETURN(decl, expr)                    \
  auto GVFS_CONCAT(_res_, __LINE__) = (expr);                \
  if (!GVFS_CONCAT(_res_, __LINE__).is_ok())                 \
    return GVFS_CONCAT(_res_, __LINE__).status();            \
  decl = std::move(GVFS_CONCAT(_res_, __LINE__)).value()

}  // namespace gvfs
