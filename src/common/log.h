// Minimal leveled logger. Components log against a named facility; verbosity
// is controlled globally (default: warnings only) so tests and benches stay
// quiet unless asked. Not thread-safe beyond line atomicity, which is all the
// cooperative simulator needs.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace gvfs {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  static LogLevel level();
  static void set_level(LogLevel lvl);
  static void write(LogLevel lvl, std::string_view facility, std::string_view msg);
};

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel lvl, std::string_view facility) : lvl_(lvl), facility_(facility) {}
  ~LogLine() { Logger::write(lvl_, facility_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel lvl_;
  std::string facility_;
  std::ostringstream os_;
};
}  // namespace detail

#define GVFS_LOG(lvl, facility)                                 \
  if (::gvfs::Logger::level() <= (lvl))                         \
  ::gvfs::detail::LogLine((lvl), (facility))

#define GVFS_DEBUG(facility) GVFS_LOG(::gvfs::LogLevel::kDebug, facility)
#define GVFS_INFO(facility) GVFS_LOG(::gvfs::LogLevel::kInfo, facility)
#define GVFS_WARN(facility) GVFS_LOG(::gvfs::LogLevel::kWarn, facility)
#define GVFS_ERROR(facility) GVFS_LOG(::gvfs::LogLevel::kError, facility)

}  // namespace gvfs
