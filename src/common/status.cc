#include "common/status.h"

namespace gvfs {

const char* err_name(ErrCode c) {
  switch (c) {
    case ErrCode::kOk: return "OK";
    case ErrCode::kPerm: return "PERM";
    case ErrCode::kNoEnt: return "NOENT";
    case ErrCode::kIo: return "IO";
    case ErrCode::kAccess: return "ACCESS";
    case ErrCode::kExist: return "EXIST";
    case ErrCode::kNotDir: return "NOTDIR";
    case ErrCode::kIsDir: return "ISDIR";
    case ErrCode::kInval: return "INVAL";
    case ErrCode::kFBig: return "FBIG";
    case ErrCode::kNoSpc: return "NOSPC";
    case ErrCode::kRoFs: return "ROFS";
    case ErrCode::kNameTooLong: return "NAMETOOLONG";
    case ErrCode::kNotEmpty: return "NOTEMPTY";
    case ErrCode::kStale: return "STALE";
    case ErrCode::kBadHandle: return "BADHANDLE";
    case ErrCode::kNotSupported: return "NOTSUPP";
    case ErrCode::kBadXdr: return "BADXDR";
    case ErrCode::kRpcMismatch: return "RPCMISMATCH";
    case ErrCode::kAuthError: return "AUTHERROR";
    case ErrCode::kTimeout: return "TIMEOUT";
    case ErrCode::kClosed: return "CLOSED";
    case ErrCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  std::string s = err_name(code_);
  if (!msg_.empty()) {
    s += ": ";
    s += msg_;
  }
  return s;
}

}  // namespace gvfs
