#include "common/trace.h"

namespace gvfs::trace {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (char ch : s) {
    if (ch == '"' || ch == '\\') out += '\\';
    out += ch;
  }
}

}  // namespace

void RpcTracer::begin(const void* ctx, u32 xid, u32 proc, std::string op,
                      SimTime now) {
  TraceSpan span;
  span.xid = xid;
  span.proc = proc;
  span.op = std::move(op);
  span.start = now;
  open_[ctx].push_back(std::move(span));
}

void RpcTracer::annotate(const void* ctx, std::string layer, std::string tag,
                         SimTime now) {
  auto it = open_.find(ctx);
  if (it == open_.end() || it->second.empty()) return;
  it->second.back().events.push_back(SpanEvent{now, std::move(layer), std::move(tag)});
}

void RpcTracer::end(const void* ctx, SimTime now, bool ok) {
  auto it = open_.find(ctx);
  if (it == open_.end() || it->second.empty()) return;
  TraceSpan span = std::move(it->second.back());
  it->second.pop_back();
  if (it->second.empty()) open_.erase(it);
  span.end = now;
  span.ok = ok;
  if (ring_.size() >= capacity_) {
    ring_.pop_front();
    dropped_.inc();
  }
  ring_.push_back(std::move(span));
}

std::string RpcTracer::to_json() const {
  std::string out = "[";
  bool first_span = true;
  for (const TraceSpan& s : ring_) {
    if (!first_span) out += ",";
    first_span = false;
    out += "\n  {\"xid\": " + std::to_string(s.xid);
    out += ", \"proc\": " + std::to_string(s.proc);
    out += ", \"op\": \"";
    append_escaped(out, s.op);
    out += "\", \"start_ns\": " + std::to_string(s.start);
    out += ", \"end_ns\": " + std::to_string(s.end);
    out += ", \"ok\": ";
    out += s.ok ? "true" : "false";
    out += ", \"events\": [";
    bool first_ev = true;
    for (const SpanEvent& e : s.events) {
      if (!first_ev) out += ", ";
      first_ev = false;
      out += "{\"at_ns\": " + std::to_string(e.at);
      out += ", \"layer\": \"";
      append_escaped(out, e.layer);
      out += "\", \"tag\": \"";
      append_escaped(out, e.tag);
      out += "\"}";
    }
    out += "]}";
  }
  out += "\n]";
  return out;
}

void RpcTracer::clear() {
  open_.clear();
  ring_.clear();
  dropped_.reset();
}

void RpcTracer::register_metrics(metrics::Registry& r,
                                 const std::string& prefix) const {
  r.register_counter(prefix + "spans_dropped", &dropped_);
}

}  // namespace gvfs::trace
