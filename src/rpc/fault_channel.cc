#include "rpc/fault_channel.h"

namespace gvfs::rpc {

RpcReply FaultyChannel::call(sim::Process& p, const RpcCall& call) {
  faults_.fire_restarts_due(p.now(), server_id_);
  if (faults_.drop_request(p.now(), server_id_)) {
    if (tracer_) tracer_->annotate(&p, "fault", "request_dropped", p.now());
    return make_error_reply(call, err(ErrCode::kTimeout, "request lost"));
  }
  RpcReply reply = inner_.call(p, call);
  if (faults_.drop_reply(p.now())) {
    if (tracer_) tracer_->annotate(&p, "fault", "reply_dropped", p.now());
    return make_error_reply(call, err(ErrCode::kTimeout, "reply lost"));
  }
  return reply;
}

std::vector<RpcReply> FaultyChannel::call_pipelined(
    sim::Process& p, const std::vector<RpcCall>& calls) {
  faults_.fire_restarts_due(p.now(), server_id_);
  // Decide request losses up front; only the surviving calls reach the inner
  // channel's pipelined path (the lost ones never occupied the server).
  std::vector<RpcReply> replies(calls.size());
  std::vector<std::size_t> live;
  std::vector<RpcCall> forwarded;
  for (std::size_t i = 0; i < calls.size(); ++i) {
    if (faults_.drop_request(p.now(), server_id_)) {
      if (tracer_) tracer_->annotate(&p, "fault", "request_dropped", p.now());
      replies[i] = make_error_reply(calls[i], err(ErrCode::kTimeout, "request lost"));
    } else {
      live.push_back(i);
      forwarded.push_back(calls[i]);
    }
  }
  if (!forwarded.empty()) {
    std::vector<RpcReply> inner = inner_.call_pipelined(p, forwarded);
    for (std::size_t j = 0; j < inner.size(); ++j) {
      if (faults_.drop_reply(p.now())) {
        if (tracer_) tracer_->annotate(&p, "fault", "reply_dropped", p.now());
        replies[live[j]] =
            make_error_reply(calls[live[j]], err(ErrCode::kTimeout, "reply lost"));
      } else {
        replies[live[j]] = std::move(inner[j]);
      }
    }
  }
  return replies;
}

}  // namespace gvfs::rpc
