// Modeled wire compression for bulk RPC payloads (the "compress" leg of the
// paper's action-list tradeoff, applied to the block channel). A paired
// decorator straddles the WAN:
//
//   proxy -> CompressChannel -> retry/fault -> tunnel -> CompressHandler -> server
//
// The client-side CompressChannel wraps a call's bulk payload (WRITE data)
// in a CompressedMessage whose wire_size() is reduced by the blob-modeled
// savings (Blob::compressed_size, never larger than raw), so every
// link/tunnel below charges the compressed byte count without changes; the
// server-side CompressHandler unwraps it before the real handler sees the
// args, and symmetrically wraps reply payloads (READ data) for the return
// leg. Compression/inflation CPU is charged at the wrapping/unwrapping end
// at gzip-class throughputs (ssh::GzipModel's numbers), optionally on a
// contended sim::CpuPool. No payload bytes are altered — compression is a
// time/bytes model, which is exactly what the simulation measures.
#pragma once

#include "blob/blob.h"
#include "common/metrics.h"
#include "rpc/rpc.h"

namespace gvfs::rpc {

// CPU cost/ratio knobs shared by both ends (defaults mirror ssh::GzipModel:
// gzip -6 on a ~1 GHz PIII).
struct CompressConfig {
  double compress_bps = 10.0 * 1_MiB;
  double inflate_bps = 30.0 * 1_MiB;
  // Charged for (de)compression work; nullptr = uncontended p.delay.
  sim::CpuPool* cpu = nullptr;
};

// A message whose bulk payload crosses the wire compressed: wire_size() is
// the inner message's minus the modeled savings; encoding (and the payload
// itself) is byte-identical to the inner message.
class CompressedMessage final : public Message {
 public:
  CompressedMessage(MessagePtr inner, u64 saved_bytes)
      : inner_(std::move(inner)), saved_(saved_bytes) {}

  [[nodiscard]] u64 wire_size() const override {
    return inner_->wire_size() - saved_;
  }
  void encode(xdr::XdrEncoder& enc) const override { inner_->encode(enc); }
  [[nodiscard]] const blob::Blob* bulk_payload() const override {
    return inner_->bulk_payload();
  }

  [[nodiscard]] const MessagePtr& inner() const { return inner_; }
  [[nodiscard]] u64 saved_bytes() const { return saved_; }

 private:
  MessagePtr inner_;
  u64 saved_;
};

// Shared accounting for one end of the stage.
class CompressStats {
 public:
  void register_metrics(metrics::Registry& r, const std::string& prefix) const {
    r.register_counter(prefix + "compress_bytes_in", &bytes_in_);
    r.register_counter(prefix + "compress_bytes_out", &bytes_out_);
    r.register_gauge(prefix + "compress_cpu_ms", &cpu_ms_);
  }
  [[nodiscard]] u64 bytes_in() const { return bytes_in_.value(); }
  [[nodiscard]] u64 bytes_out() const { return bytes_out_.value(); }
  [[nodiscard]] SimDuration cpu_time() const { return cpu_time_; }

  void count(u64 raw, u64 compressed) {
    bytes_in_.inc(raw);
    bytes_out_.inc(compressed);
  }
  void charge(sim::Process& p, const CompressConfig& cfg, u64 bytes, double bps);

 private:
  metrics::Counter bytes_in_;   // raw payload bytes entering the compressor
  metrics::Counter bytes_out_;  // modeled bytes leaving it
  metrics::Gauge cpu_ms_;       // cumulative (de)compression CPU, ms
  SimDuration cpu_time_ = 0;
};

// Client side: compresses call payloads, inflates reply payloads, unwraps
// the CompressedMessage so upper layers message_cast the real result.
class CompressChannel final : public RpcChannel {
 public:
  CompressChannel(RpcChannel& next, CompressConfig cfg = {})
      : next_(next), cfg_(cfg) {}

  RpcReply call(sim::Process& p, const RpcCall& call) override;
  std::vector<RpcReply> call_pipelined(sim::Process& p,
                                       const std::vector<RpcCall>& calls) override;

  [[nodiscard]] const CompressStats& stats() const { return stats_; }
  void register_metrics(metrics::Registry& r, const std::string& prefix) const {
    stats_.register_metrics(r, prefix);
  }

 private:
  RpcCall wrap_call_(sim::Process& p, const RpcCall& call);
  void unwrap_reply_(sim::Process& p, RpcReply& reply);

  RpcChannel& next_;
  CompressConfig cfg_;
  CompressStats stats_;
};

// Server side: unwraps call payloads before the real handler, compresses
// reply payloads for the return leg. CPU lands on the server's pool.
class CompressHandler final : public RpcHandler {
 public:
  CompressHandler(RpcHandler& upstream, CompressConfig cfg = {})
      : upstream_(upstream), cfg_(cfg) {}

  RpcReply handle(sim::Process& p, const RpcCall& call) override;

  [[nodiscard]] const CompressStats& stats() const { return stats_; }
  void register_metrics(metrics::Registry& r, const std::string& prefix) const {
    stats_.register_metrics(r, prefix);
  }

 private:
  RpcHandler& upstream_;
  CompressConfig cfg_;
  CompressStats stats_;
};

}  // namespace gvfs::rpc
