// RetryChannel: NFS-style retransmission over an unreliable channel.
//
// Models a hard-mounted NFS client's RPC layer: each call gets a
// retransmission timeout (RTO); on kTimeout from below, the caller has
// waited out the RTO (virtual time), the call is reissued with the SAME xid
// (so the server's duplicate request cache can suppress re-execution of
// non-idempotent ops), and the RTO backs off exponentially with
// deterministic jitter drawn from the kernel PRNG. `max_retransmits == 0`
// retries forever — hard-mount semantics, which is what lets workloads ride
// out partitions and server reboots; a finite budget gives soft-mount
// behaviour (kTimeout surfaces, e.g. into the proxy's degraded mode).
//
// Reply xids are verified against the issued call before acceptance.
//
// Both call() and call_pipelined() funnel into one retry loop (finish_), so
// RTO budget, backoff, and the timeout/retransmit counters are maintained in
// exactly one place regardless of how the first transmission went out.
#pragma once

#include "common/metrics.h"
#include "common/trace.h"
#include "rpc/rpc.h"
#include "sim/kernel.h"

namespace gvfs::rpc {

struct RetryConfig {
  SimDuration timeout = 1100 * kMillisecond;  // initial RTO (NFS timeo=11)
  double backoff = 2.0;
  SimDuration max_timeout = 60 * kSecond;
  double jitter = 0.1;       // extra wait, uniform in [0, jitter*RTO)
  u32 max_retransmits = 0;   // 0 = retry forever (hard mount)
};

class RetryChannel final : public RpcChannel {
 public:
  RetryChannel(RpcChannel& inner, sim::SimKernel& kernel, RetryConfig cfg = {})
      : inner_(inner), kernel_(kernel), cfg_(cfg) {}

  RpcReply call(sim::Process& p, const RpcCall& call) override;
  std::vector<RpcReply> call_pipelined(sim::Process& p,
                                       const std::vector<RpcCall>& calls) override;

  [[nodiscard]] const RetryConfig& config() const { return cfg_; }

  // Annotate retransmissions onto the caller's open trace span.
  void set_tracer(trace::RpcTracer* t) { tracer_ = t; }

  // ---- retry-budget counters ----------------------------------------------
  [[nodiscard]] u64 timeouts() const { return timeouts_.value(); }        // RTO expiries seen
  [[nodiscard]] u64 retransmits() const { return retransmits_.value(); }  // calls reissued
  [[nodiscard]] u64 exhausted() const { return exhausted_.value(); }      // budget ran out
  [[nodiscard]] u64 xid_mismatches() const { return xid_mismatches_.value(); }
  void reset_stats() {
    timeouts_.reset();
    retransmits_.reset();
    exhausted_.reset();
    xid_mismatches_.reset();
    rto_wait_ms_.reset();
  }

  void register_metrics(metrics::Registry& r, const std::string& prefix) const {
    r.register_counter(prefix + "timeouts", &timeouts_);
    r.register_counter(prefix + "retransmits", &retransmits_);
    r.register_counter(prefix + "exhausted", &exhausted_);
    r.register_counter(prefix + "xid_mismatches", &xid_mismatches_);
    r.register_histogram(prefix + "rto_wait_ms", &rto_wait_ms_);
  }

 private:
  // Shared retry loop: takes the first transmission's send time and reply
  // (already obtained by call()/call_pipelined()) and owns every subsequent
  // timeout wait, reissue, and counter from there.
  RpcReply finish_(sim::Process& p, const RpcCall& call, SimTime sent_at,
                   RpcReply reply);

  RpcChannel& inner_;
  sim::SimKernel& kernel_;
  RetryConfig cfg_;
  trace::RpcTracer* tracer_ = nullptr;
  metrics::Counter timeouts_;
  metrics::Counter retransmits_;
  metrics::Counter exhausted_;
  metrics::Counter xid_mismatches_;
  metrics::Histogram rto_wait_ms_;  // per-retransmit wait before reissue
};

}  // namespace gvfs::rpc
