// RetryChannel: NFS-style retransmission over an unreliable channel.
//
// Models a hard-mounted NFS client's RPC layer: each call gets a
// retransmission timeout (RTO); on kTimeout from below, the caller has
// waited out the RTO (virtual time), the call is reissued with the SAME xid
// (so the server's duplicate request cache can suppress re-execution of
// non-idempotent ops), and the RTO backs off exponentially with
// deterministic jitter drawn from the kernel PRNG. `max_retransmits == 0`
// retries forever — hard-mount semantics, which is what lets workloads ride
// out partitions and server reboots; a finite budget gives soft-mount
// behaviour (kTimeout surfaces, e.g. into the proxy's degraded mode).
//
// Reply xids are verified against the issued call before acceptance.
#pragma once

#include "rpc/rpc.h"
#include "sim/kernel.h"

namespace gvfs::rpc {

struct RetryConfig {
  SimDuration timeout = 1100 * kMillisecond;  // initial RTO (NFS timeo=11)
  double backoff = 2.0;
  SimDuration max_timeout = 60 * kSecond;
  double jitter = 0.1;       // extra wait, uniform in [0, jitter*RTO)
  u32 max_retransmits = 0;   // 0 = retry forever (hard mount)
};

class RetryChannel final : public RpcChannel {
 public:
  RetryChannel(RpcChannel& inner, sim::SimKernel& kernel, RetryConfig cfg = {})
      : inner_(inner), kernel_(kernel), cfg_(cfg) {}

  RpcReply call(sim::Process& p, const RpcCall& call) override;
  std::vector<RpcReply> call_pipelined(sim::Process& p,
                                       const std::vector<RpcCall>& calls) override;

  [[nodiscard]] const RetryConfig& config() const { return cfg_; }

  // ---- retry-budget counters ----------------------------------------------
  [[nodiscard]] u64 timeouts() const { return timeouts_; }          // RTO expiries seen
  [[nodiscard]] u64 retransmits() const { return retransmits_; }    // calls reissued
  [[nodiscard]] u64 exhausted() const { return exhausted_; }        // budget ran out
  [[nodiscard]] u64 xid_mismatches() const { return xid_mismatches_; }
  void reset_stats() { timeouts_ = retransmits_ = exhausted_ = xid_mismatches_ = 0; }

 private:
  RpcChannel& inner_;
  sim::SimKernel& kernel_;
  RetryConfig cfg_;
  u64 timeouts_ = 0;
  u64 retransmits_ = 0;
  u64 exhausted_ = 0;
  u64 xid_mismatches_ = 0;
};

}  // namespace gvfs::rpc
