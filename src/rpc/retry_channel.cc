#include "rpc/retry_channel.h"

#include <algorithm>

namespace gvfs::rpc {

RpcReply RetryChannel::call(sim::Process& p, const RpcCall& call) {
  SimTime sent_at = p.now();
  RpcReply reply = inner_.call(p, call);
  return finish_(p, call, sent_at, std::move(reply));
}

std::vector<RpcReply> RetryChannel::call_pipelined(sim::Process& p,
                                                   const std::vector<RpcCall>& calls) {
  // The whole batch goes out at once; every entry shares the batch send time
  // as the start of its first RTO. Timed-out entries are then retried
  // serially through the same loop as single calls — the pipelined fast path
  // is the common (fault-free) case.
  SimTime batch_sent = p.now();
  std::vector<RpcReply> replies = inner_.call_pipelined(p, calls);
  for (std::size_t i = 0; i < replies.size(); ++i) {
    replies[i] = finish_(p, calls[i], batch_sent, std::move(replies[i]));
  }
  return replies;
}

RpcReply RetryChannel::finish_(sim::Process& p, const RpcCall& call,
                               SimTime sent_at, RpcReply reply) {
  SimDuration rto = cfg_.timeout;
  u32 attempts = 0;
  for (;;) {
    if (reply.status.code() != ErrCode::kTimeout) {
      if (reply.status.is_ok() && reply.xid != call.xid) {
        xid_mismatches_.inc();
        if (tracer_) tracer_->annotate(&p, "retry", "xid_mismatch", p.now());
        return make_error_reply(call, err(ErrCode::kBadXdr, "reply xid mismatch"));
      }
      return reply;
    }
    timeouts_.inc();
    if (cfg_.max_retransmits > 0 && attempts >= cfg_.max_retransmits) {
      exhausted_.inc();
      if (tracer_) tracer_->annotate(&p, "retry", "exhausted", p.now());
      return reply;
    }
    ++attempts;
    retransmits_.inc();
    // The client sat on the RTO before concluding loss; a dropped reply may
    // already have consumed part of it (the inner call blocked for the full
    // round trip before the loss was injected).
    SimDuration elapsed = p.now() - sent_at;
    SimDuration wait = rto > elapsed ? rto - elapsed : 0;
    if (cfg_.jitter > 0.0) {
      wait += static_cast<SimDuration>(kernel_.rng().next_double() * cfg_.jitter *
                                       static_cast<double>(rto));
    }
    rto_wait_ms_.observe(static_cast<double>(wait) /
                         static_cast<double>(kMillisecond));
    if (wait > 0) p.delay(wait);
    rto = std::min<SimDuration>(cfg_.max_timeout,
                                static_cast<SimDuration>(static_cast<double>(rto) *
                                                         cfg_.backoff));
    if (tracer_) {
      tracer_->annotate(&p, "retry", "retransmit#" + std::to_string(attempts),
                        p.now());
    }
    sent_at = p.now();
    reply = inner_.call(p, call);
  }
}

}  // namespace gvfs::rpc
