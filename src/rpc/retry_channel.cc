#include "rpc/retry_channel.h"

#include <algorithm>

namespace gvfs::rpc {

RpcReply RetryChannel::call(sim::Process& p, const RpcCall& call) {
  SimDuration rto = cfg_.timeout;
  u32 attempts = 0;
  for (;;) {
    SimTime sent_at = p.now();
    RpcReply reply = inner_.call(p, call);
    if (reply.status.code() != ErrCode::kTimeout) {
      if (reply.status.is_ok() && reply.xid != call.xid) {
        ++xid_mismatches_;
        return make_error_reply(call, err(ErrCode::kBadXdr, "reply xid mismatch"));
      }
      return reply;
    }
    ++timeouts_;
    if (cfg_.max_retransmits > 0 && attempts >= cfg_.max_retransmits) {
      ++exhausted_;
      return reply;
    }
    ++attempts;
    ++retransmits_;
    // The client sat on the RTO before concluding loss; a dropped reply may
    // already have consumed part of it (the inner call blocked for the full
    // round trip before the loss was injected).
    SimDuration elapsed = p.now() - sent_at;
    SimDuration wait = rto > elapsed ? rto - elapsed : 0;
    if (cfg_.jitter > 0.0) {
      wait += static_cast<SimDuration>(kernel_.rng().next_double() * cfg_.jitter *
                                       static_cast<double>(rto));
    }
    if (wait > 0) p.delay(wait);
    rto = std::min<SimDuration>(cfg_.max_timeout,
                                static_cast<SimDuration>(static_cast<double>(rto) *
                                                         cfg_.backoff));
  }
}

std::vector<RpcReply> RetryChannel::call_pipelined(sim::Process& p,
                                                   const std::vector<RpcCall>& calls) {
  std::vector<RpcReply> replies = inner_.call_pipelined(p, calls);
  // Timed-out batch entries are retried serially; the pipelined fast path is
  // the common (fault-free) case.
  for (std::size_t i = 0; i < replies.size(); ++i) {
    if (replies[i].status.code() == ErrCode::kTimeout) {
      ++timeouts_;
      SimDuration rto = cfg_.timeout;
      if (cfg_.jitter > 0.0) {
        rto += static_cast<SimDuration>(kernel_.rng().next_double() * cfg_.jitter *
                                        static_cast<double>(rto));
      }
      p.delay(rto);
      ++retransmits_;
      replies[i] = call(p, calls[i]);
    } else if (replies[i].status.is_ok() && replies[i].xid != calls[i].xid) {
      ++xid_mismatches_;
      replies[i] = make_error_reply(calls[i], err(ErrCode::kBadXdr, "reply xid mismatch"));
    }
  }
  return replies;
}

}  // namespace gvfs::rpc
