#include "rpc/rpc.h"

#include <algorithm>

namespace gvfs::rpc {

// -------------------------------------------------------------- Credential --

u64 Credential::wire_size() const {
  // flavor(4) + body-length(4) + body + NULL verifier (flavor 4 + len 4).
  u64 body = 0;
  if (flavor == AuthFlavor::kUnix) {
    body = xdr::size_u32()                 // stamp
           + xdr::size_string(machine.size())
           + xdr::size_u32() + xdr::size_u32()  // uid, gid
           + xdr::size_u32() + 4 * gids.size();  // gids array
  }
  return 4 + 4 + body + 8;
}

void Credential::encode(xdr::XdrEncoder& enc) const {
  enc.put_u32(static_cast<u32>(flavor));
  if (flavor == AuthFlavor::kUnix) {
    xdr::XdrEncoder body;
    body.put_u32(stamp);
    body.put_string(machine);
    body.put_u32(uid);
    body.put_u32(gid);
    body.put_u32(static_cast<u32>(gids.size()));
    for (u32 g : gids) body.put_u32(g);
    enc.put_opaque(body.bytes());
  } else {
    enc.put_u32(0);  // empty body
  }
  // NULL verifier.
  enc.put_u32(0);
  enc.put_u32(0);
}

Result<Credential> Credential::decode(xdr::XdrDecoder& dec) {
  Credential c;
  c.flavor = static_cast<AuthFlavor>(dec.get_u32());
  std::span<const u8> body = dec.get_opaque_view();  // aliases the wire buffer
  if (c.flavor == AuthFlavor::kUnix) {
    xdr::XdrDecoder b(body);
    c.stamp = b.get_u32();
    c.machine = b.get_string();
    c.uid = b.get_u32();
    c.gid = b.get_u32();
    u32 n = b.get_u32();
    if (n > 16) return err(ErrCode::kAuthError, "too many groups");
    for (u32 i = 0; i < n; ++i) c.gids.push_back(b.get_u32());
    if (!b.ok()) return err(ErrCode::kBadXdr, "credential body");
  }
  dec.get_u32();  // verifier flavor
  (void)dec.get_opaque_view();  // skip verifier body without copying
  if (!dec.ok()) return err(ErrCode::kBadXdr, "credential");
  return c;
}

// ----------------------------------------------------------------- RpcCall --

u64 RpcCall::wire_size() const {
  // xid, msg_type, rpcvers, prog, vers, proc = 6 words.
  u64 header = 6 * xdr::size_u32() + cred.wire_size();
  u64 body = args ? args->wire_size() : 0;
  return kRecordMarkBytes + header + body;
}

void RpcCall::encode_header(xdr::XdrEncoder& enc) const {
  enc.put_u32(xid);
  enc.put_u32(0);  // CALL
  enc.put_u32(kRpcVersion);
  enc.put_u32(prog);
  enc.put_u32(vers);
  enc.put_u32(proc);
  cred.encode(enc);
}

u64 RpcReply::wire_size() const {
  // xid, msg_type, reply_stat, verifier(8), accept_stat = 24 bytes.
  u64 header = 3 * xdr::size_u32() + 8 + xdr::size_u32();
  u64 body = result ? result->wire_size() : 0;
  return kRecordMarkBytes + header + body;
}

// ------------------------------------------------------------- LinkChannel --

RpcReply LinkChannel::call(sim::Process& p, const RpcCall& call) {
  calls_.inc();
  if (per_call_cpu_ > 0) p.delay(per_call_cpu_);
  if (to_server_ != nullptr) to_server_->transmit(p, call.wire_size());
  RpcReply reply = handler_.handle(p, call);
  if (to_client_ != nullptr) to_client_->transmit(p, reply.wire_size());
  return reply;
}

std::vector<RpcReply> LinkChannel::call_pipelined(sim::Process& p,
                                                  const std::vector<RpcCall>& calls) {
  std::vector<RpcReply> replies;
  replies.reserve(calls.size());
  for (std::size_t i = 0; i < calls.size(); ++i) {
    calls_.inc();
    if (per_call_cpu_ > 0) p.delay(per_call_cpu_);
    // Requests stream back-to-back; only the first pays propagation (the
    // rest are in flight behind it).
    if (to_server_ != nullptr) {
      to_server_->transmit_ex(p, calls[i].wire_size(), i == 0);
    }
    RpcReply reply = handler_.handle(p, calls[i]);
    // Replies likewise overlap; the last one pays the return propagation.
    if (to_client_ != nullptr) {
      to_client_->transmit_ex(p, reply.wire_size(), i + 1 == calls.size());
    }
    replies.push_back(std::move(reply));
  }
  return replies;
}

// ----------------------------------------------------------- RpcDispatcher --

void RpcDispatcher::register_program(u32 prog, u32 vers, RpcHandler* handler) {
  programs_.emplace_back(Key{prog, vers}, handler);
}

RpcReply RpcDispatcher::handle(sim::Process& p, const RpcCall& call) {
  for (auto& [key, handler] : programs_) {
    if (key.prog == call.prog && key.vers == call.vers) {
      return handler->handle(p, call);
    }
  }
  return make_error_reply(call, err(ErrCode::kRpcMismatch, "program unavailable"));
}

RpcReply make_reply(const RpcCall& call, MessagePtr result) {
  RpcReply r;
  r.xid = call.xid;
  r.status = Status::ok();
  r.result = std::move(result);
  return r;
}

RpcReply make_error_reply(const RpcCall& call, Status st) {
  RpcReply r;
  r.xid = call.xid;
  r.status = std::move(st);
  return r;
}

}  // namespace gvfs::rpc
