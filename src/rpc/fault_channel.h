// FaultyChannel: an RpcChannel decorator that subjects calls to a
// FaultInjector's schedule (sim/faults.h).
//
// Semantics in the synchronous simulation model:
//   * request dropped  -> the server never executes the call; the caller gets
//     a kTimeout reply immediately (its retransmission layer owns the RTO
//     wait — see RetryChannel);
//   * reply dropped    -> the inner call runs to completion (the server DID
//     execute the operation, charging full request + service time), then the
//     reply is discarded and kTimeout returned. Retransmitting a
//     non-idempotent op after this is exactly what the server-side duplicate
//     request cache exists for;
//   * server crash window -> as request-drop; the first traffic after the
//     window fires the injector's restart callback (reboot: volatile server
//     state cleared by whoever registered it).
#pragma once

#include "common/trace.h"
#include "rpc/rpc.h"
#include "sim/faults.h"

namespace gvfs::rpc {

class FaultyChannel final : public RpcChannel {
 public:
  // `server_id` names the origin this channel leads to; crash windows scoped
  // to another server (sim::FaultWindow::server) leave this path untouched.
  // Single-origin topologies keep the default id 0.
  FaultyChannel(RpcChannel& inner, sim::FaultInjector& faults, int server_id = 0)
      : inner_(inner), faults_(faults), server_id_(server_id) {}

  RpcReply call(sim::Process& p, const RpcCall& call) override;
  std::vector<RpcReply> call_pipelined(sim::Process& p,
                                       const std::vector<RpcCall>& calls) override;

  [[nodiscard]] sim::FaultInjector& injector() { return faults_; }

  // Annotate injected losses onto the caller's open trace span.
  void set_tracer(trace::RpcTracer* t) { tracer_ = t; }

 private:
  RpcChannel& inner_;
  sim::FaultInjector& faults_;
  int server_id_;
  trace::RpcTracer* tracer_ = nullptr;
};

}  // namespace gvfs::rpc
