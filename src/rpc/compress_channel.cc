#include "rpc/compress_channel.h"

namespace gvfs::rpc {

namespace {

// Modeled savings for a message's bulk payload: raw minus blob-modeled
// compressed size. The compressed_size contract clamps to raw, so savings
// are never negative; 0 means "not worth wrapping".
u64 payload_savings(const MessagePtr& m, u64* raw_out) {
  const blob::Blob* payload = m ? m->bulk_payload() : nullptr;
  if (payload == nullptr) return 0;
  u64 raw = payload->size();
  u64 compressed = payload->compressed_size(0, raw);
  if (raw_out != nullptr) *raw_out = raw;
  return raw > compressed ? raw - compressed : 0;
}

}  // namespace

void CompressStats::charge(sim::Process& p, const CompressConfig& cfg, u64 bytes,
                           double bps) {
  SimDuration work = transfer_time(bytes, bps);
  cpu_time_ += work;
  cpu_ms_.set(static_cast<u64>(cpu_time_ / kMillisecond));
  if (cfg.cpu != nullptr) {
    cfg.cpu->run(p, work);
  } else {
    p.delay(work);
  }
}

RpcCall CompressChannel::wrap_call_(sim::Process& p, const RpcCall& call) {
  u64 raw = 0;
  u64 saved = payload_savings(call.args, &raw);
  if (saved == 0) return call;
  stats_.count(raw, raw - saved);
  stats_.charge(p, cfg_, raw, cfg_.compress_bps);
  RpcCall c = call;
  c.args = std::make_shared<CompressedMessage>(call.args, saved);
  return c;
}

void CompressChannel::unwrap_reply_(sim::Process& p, RpcReply& reply) {
  if (!reply.status.is_ok() || !reply.result) return;
  auto cm = message_cast<CompressedMessage>(reply.result);
  if (!cm) return;
  const blob::Blob* payload = cm->bulk_payload();
  stats_.charge(p, cfg_, payload ? payload->size() : 0, cfg_.inflate_bps);
  reply.result = cm->inner();
}

RpcReply CompressChannel::call(sim::Process& p, const RpcCall& call) {
  RpcReply reply = next_.call(p, wrap_call_(p, call));
  unwrap_reply_(p, reply);
  return reply;
}

std::vector<RpcReply> CompressChannel::call_pipelined(
    sim::Process& p, const std::vector<RpcCall>& calls) {
  // Requests are compressed serially on this end's CPU before the batch
  // ships; the round trips below still overlap.
  std::vector<RpcCall> wrapped;
  wrapped.reserve(calls.size());
  for (const RpcCall& c : calls) wrapped.push_back(wrap_call_(p, c));
  std::vector<RpcReply> replies = next_.call_pipelined(p, wrapped);
  for (RpcReply& r : replies) unwrap_reply_(p, r);
  return replies;
}

RpcReply CompressHandler::handle(sim::Process& p, const RpcCall& call) {
  RpcCall c = call;
  if (auto cm = call.args ? message_cast<CompressedMessage>(call.args) : nullptr) {
    const blob::Blob* payload = cm->bulk_payload();
    stats_.charge(p, cfg_, payload ? payload->size() : 0, cfg_.inflate_bps);
    c.args = cm->inner();
  }
  RpcReply reply = upstream_.handle(p, c);
  u64 raw = 0;
  u64 saved = reply.status.is_ok() ? payload_savings(reply.result, &raw) : 0;
  if (saved > 0) {
    stats_.count(raw, raw - saved);
    stats_.charge(p, cfg_, raw, cfg_.compress_bps);
    reply.result = std::make_shared<CompressedMessage>(reply.result, saved);
  }
  return reply;
}

}  // namespace gvfs::rpc
