// ONC RPC (RFC 1057) message layer.
//
// Calls and replies are structured objects whose bodies implement Message:
// they can XDR-encode themselves (round-tripped in unit tests) and report an
// analytic wire_size() used by the simulation transport to charge link time.
// Channels are synchronous — RpcChannel::call blocks the calling simulation
// process for exactly the time the request and reply spend on the network
// and in the servers, which is how the paper's NFS-over-WAN latencies arise.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/types.h"
#include "sim/kernel.h"
#include "sim/resources.h"
#include "xdr/xdr.h"

namespace gvfs::blob {
class Blob;
}

namespace gvfs::rpc {

// Fixed protocol numbers (mirroring the real registry where it matters).
constexpr u32 kRpcVersion = 2;
constexpr u32 kNfsProgram = 100003;
constexpr u32 kNfsVersion3 = 3;
constexpr u32 kMountProgram = 100005;
constexpr u32 kMountVersion3 = 3;

// TCP record-marking adds a 4-byte fragment header per RPC message.
constexpr u64 kRecordMarkBytes = 4;

enum class AuthFlavor : u32 { kNone = 0, kUnix = 1 };

// AUTH_UNIX credential body (RFC 1057 §9.2). GVFS server-side proxies remap
// these onto short-lived shadow accounts (logical user accounts, §3.1).
struct Credential {
  AuthFlavor flavor = AuthFlavor::kUnix;
  u32 stamp = 0;
  std::string machine = "grid-client";
  u32 uid = 0;
  u32 gid = 0;
  std::vector<u32> gids;

  [[nodiscard]] u64 wire_size() const;  // flavor + length + body + verifier
  void encode(xdr::XdrEncoder& enc) const;
  static Result<Credential> decode(xdr::XdrDecoder& dec);

  bool operator==(const Credential& o) const {
    return flavor == o.flavor && uid == o.uid && gid == o.gid &&
           machine == o.machine && gids == o.gids;
  }
};

// Base for all RPC argument/result bodies.
class Message {
 public:
  virtual ~Message() = default;
  [[nodiscard]] virtual u64 wire_size() const = 0;
  virtual void encode(xdr::XdrEncoder& enc) const = 0;

  // The bulk data payload this message carries (READ results, WRITE args),
  // or nullptr for control messages. The modeled wire-compression stage
  // (rpc::CompressChannel) derives its byte savings and CPU cost from this
  // without knowing concrete NFS message types.
  [[nodiscard]] virtual const blob::Blob* bulk_payload() const { return nullptr; }
};

using MessagePtr = std::shared_ptr<const Message>;

// Downcast helper: handlers know the concrete type for each procedure.
template <typename T>
std::shared_ptr<const T> message_cast(const MessagePtr& m) {
  return std::dynamic_pointer_cast<const T>(m);
}

struct RpcCall {
  u32 xid = 0;
  u32 prog = 0;
  u32 vers = 0;
  u32 proc = 0;
  Credential cred;
  MessagePtr args;  // may be null (void args)

  // Record mark + call header + credential + body.
  [[nodiscard]] u64 wire_size() const;
  void encode_header(xdr::XdrEncoder& enc) const;
};

struct RpcReply {
  u32 xid = 0;
  Status status;      // transport/auth-level status; kOk = MSG_ACCEPTED+SUCCESS
  MessagePtr result;  // present iff status.is_ok() (procedure-level errors
                      // live inside the result body, as in real NFS)

  [[nodiscard]] u64 wire_size() const;
};

// Synchronous RPC transport abstraction. Implementations compose: an SSH
// tunnel wraps a link channel wraps a server, a proxy is itself a handler
// that owns an upstream channel.
class RpcChannel {
 public:
  virtual ~RpcChannel() = default;
  virtual RpcReply call(sim::Process& p, const RpcCall& call) = 0;

  // Issue several calls with their round trips overlapped (client-side
  // read-ahead / write clustering). The default degrades to serial calls;
  // link-crossing channels charge propagation latency once per batch.
  virtual std::vector<RpcReply> call_pipelined(sim::Process& p,
                                               const std::vector<RpcCall>& calls) {
    std::vector<RpcReply> replies;
    replies.reserve(calls.size());
    for (const RpcCall& c : calls) replies.push_back(call(p, c));
    return replies;
  }
};

// Server side: anything that can service a call.
class RpcHandler {
 public:
  virtual ~RpcHandler() = default;
  virtual RpcReply handle(sim::Process& p, const RpcCall& call) = 0;
};

// Channel crossing an (optionally asymmetric) pair of simulated links to
// reach a handler. Null links model same-host loopback at zero cost;
// `per_call_cpu` charges fixed end-host processing (syscall + context
// switches) per RPC.
class LinkChannel final : public RpcChannel {
 public:
  LinkChannel(RpcHandler& handler, sim::Link* to_server, sim::Link* to_client,
              SimDuration per_call_cpu = 0)
      : handler_(handler),
        to_server_(to_server),
        to_client_(to_client),
        per_call_cpu_(per_call_cpu) {}

  RpcReply call(sim::Process& p, const RpcCall& call) override;
  std::vector<RpcReply> call_pipelined(sim::Process& p,
                                       const std::vector<RpcCall>& calls) override;

  [[nodiscard]] u64 calls() const { return calls_.value(); }

 private:
  RpcHandler& handler_;
  sim::Link* to_server_;
  sim::Link* to_client_;
  SimDuration per_call_cpu_;
  metrics::Counter calls_;
};

// Dispatches calls to programs registered by (prog, vers); the RPC-level
// portmapper role. Unknown programs get PROG_UNAVAIL (kRpcMismatch).
class RpcDispatcher final : public RpcHandler {
 public:
  void register_program(u32 prog, u32 vers, RpcHandler* handler);
  RpcReply handle(sim::Process& p, const RpcCall& call) override;

 private:
  struct Key {
    u32 prog;
    u32 vers;
    bool operator<(const Key& o) const {
      return prog != o.prog ? prog < o.prog : vers < o.vers;
    }
  };
  std::vector<std::pair<Key, RpcHandler*>> programs_;
};

// Helpers for building replies.
RpcReply make_reply(const RpcCall& call, MessagePtr result);
RpcReply make_error_reply(const RpcCall& call, Status st);

}  // namespace gvfs::rpc
