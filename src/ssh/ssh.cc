#include "ssh/ssh.h"

#include <algorithm>

namespace gvfs::ssh {

SshTunnel::SshTunnel(rpc::RpcHandler& upstream, sim::Link* to_server,
                     sim::Link* to_client, CipherSpec spec)
    : upstream_(upstream), to_server_(to_server), to_client_(to_client), spec_(spec) {}

void SshTunnel::establish(sim::Process& p) {
  if (established_) return;
  p.delay(spec_.setup_time);
  established_ = true;
}

void SshTunnel::send_(sim::Process& p, sim::Link* link, u64 bytes, bool propagate) {
  u64 framed = bytes + spec_.frame_overhead;
  bytes_.inc(framed);
  // Flow pacing (cipher + TCP window ceiling) applied as extra serial time,
  // interleaved chunk-wise with the shared-link occupancy.
  if (link == nullptr) {
    p.delay(transfer_time(framed, spec_.per_flow_bps));
    return;
  }
  u64 remaining = framed;
  while (remaining > 0) {
    u64 chunk = std::min<u64>(remaining, spec_.pacing_chunk);
    p.delay(transfer_time(chunk, spec_.per_flow_bps));
    link->transmit_ex(p, chunk, false);
    remaining -= chunk;
  }
  if (propagate && link->config().latency > 0) p.delay(link->config().latency);
}

rpc::RpcReply SshTunnel::call(sim::Process& p, const rpc::RpcCall& call) {
  establish(p);
  messages_.inc();
  send_(p, to_server_, call.wire_size(), true);
  rpc::RpcReply reply = upstream_.handle(p, call);
  send_(p, to_client_, reply.wire_size(), true);
  return reply;
}

std::vector<rpc::RpcReply> SshTunnel::call_pipelined(
    sim::Process& p, const std::vector<rpc::RpcCall>& calls) {
  establish(p);
  std::vector<rpc::RpcReply> replies;
  replies.reserve(calls.size());
  for (std::size_t i = 0; i < calls.size(); ++i) {
    messages_.inc();
    send_(p, to_server_, calls[i].wire_size(), i == 0);
    rpc::RpcReply reply = upstream_.handle(p, calls[i]);
    send_(p, to_client_, reply.wire_size(), i + 1 == calls.size());
    replies.push_back(std::move(reply));
  }
  return replies;
}

void Scp::transfer(sim::Process& p, u64 bytes, bool include_setup) {
  transfers_.inc();
  bytes_moved_.inc(bytes);
  // Parallel streams handshake concurrently: one setup latency.
  if (include_setup) p.delay(spec_.setup_time);
  // N flows pace in parallel (N x the per-flow ceiling); the shared link
  // still serializes aggregate bytes at its capacity.
  double pace_bps = spec_.per_flow_bps * static_cast<double>(streams_);
  u64 remaining = bytes;
  while (remaining > 0) {
    u64 chunk = std::min<u64>(remaining, spec_.pacing_chunk);
    p.delay(transfer_time(chunk, pace_bps));
    link_.transmit_ex(p, chunk, false);
    remaining -= chunk;
  }
  if (link_.config().latency > 0) p.delay(link_.config().latency);
}

}  // namespace gvfs::ssh
