// SSH-tunneled transport models: the private data channels GVFS proxies use
// for both block-based RPC forwarding and SCP file transfers (§3.2.2, §4.1).
//
// The decisive WAN behaviour captured here: a single SSH/TCP flow of the era
// is throughput-capped well below path capacity (64 KB TCP windows over a
// ~40 ms RTT cap a flow near 1.6 MB/s, and 3DES on a 1 GHz P3 is in the same
// range), while the Abilene path itself has far more aggregate capacity — so
// eight parallel cloning flows scale almost linearly (Table 1).
#pragma once

#include <algorithm>

#include "blob/blob.h"
#include "common/metrics.h"
#include "rpc/rpc.h"
#include "sim/resources.h"

namespace gvfs::ssh {

struct CipherSpec {
  // Per-flow throughput ceiling = min(window/RTT, cipher rate); charged as
  // flow pacing in addition to shared link occupancy.
  double per_flow_bps = 1.9 * 1_MiB;
  // Connection establishment: TCP + SSH key exchange handshakes.
  SimDuration setup_time = 400 * kMillisecond;
  // Per-RPC-message framing (SSH packet + MAC).
  u64 frame_overhead = 48;
  // Chunk size for interleaving flow pacing with link occupancy.
  u64 pacing_chunk = 64_KiB;
};

// An RPC channel that carries calls through an SSH tunnel across a pair of
// simulated links to an upstream handler (the remote GVFS proxy). The
// tunnel is established lazily on first use.
class SshTunnel final : public rpc::RpcChannel {
 public:
  SshTunnel(rpc::RpcHandler& upstream, sim::Link* to_server, sim::Link* to_client,
            CipherSpec spec = {});

  rpc::RpcReply call(sim::Process& p, const rpc::RpcCall& call) override;
  std::vector<rpc::RpcReply> call_pipelined(
      sim::Process& p, const std::vector<rpc::RpcCall>& calls) override;

  // Pre-establish (middleware starts tunnels at session setup).
  void establish(sim::Process& p);
  [[nodiscard]] bool established() const { return established_; }
  [[nodiscard]] u64 messages() const { return messages_.value(); }
  [[nodiscard]] u64 bytes_tunneled() const { return bytes_.value(); }

  void register_metrics(metrics::Registry& r, const std::string& prefix) const {
    r.register_counter(prefix + "messages", &messages_);
    r.register_counter(prefix + "bytes_tunneled", &bytes_);
  }

 private:
  void send_(sim::Process& p, sim::Link* link, u64 bytes, bool propagate);

  rpc::RpcHandler& upstream_;
  sim::Link* to_server_;
  sim::Link* to_client_;
  CipherSpec spec_;
  bool established_ = false;
  metrics::Counter messages_;
  metrics::Counter bytes_;
};

// One-shot SCP-style bulk file transfer over its own SSH connection(s):
// per-flow pacing interleaved with shared-link occupancy, so concurrent
// transfers contend realistically. `streams > 1` models GridFTP-style
// parallel-stream transfers (the paper's §6 future work: "high-bandwidth
// transfers ... using protocols such as GridFTP for inter-proxy
// transfers") — N flows multiply the per-flow window/cipher ceiling while
// the shared link still caps aggregate throughput.
class Scp {
 public:
  Scp(sim::Link& link, CipherSpec spec = {}, u32 streams = 1)
      : link_(link), spec_(spec), streams_(std::max<u32>(1, streams)) {}

  // Push `bytes` through fresh connection(s) (setup included by default;
  // parallel streams handshake concurrently).
  void transfer(sim::Process& p, u64 bytes, bool include_setup = true);

  [[nodiscard]] u64 transfers() const { return transfers_.value(); }
  [[nodiscard]] u64 bytes_moved() const { return bytes_moved_.value(); }
  [[nodiscard]] u32 streams() const { return streams_; }

  void register_metrics(metrics::Registry& r, const std::string& prefix) const {
    r.register_counter(prefix + "transfers", &transfers_);
    r.register_counter(prefix + "bytes_moved", &bytes_moved_);
  }

 private:
  sim::Link& link_;
  CipherSpec spec_;
  u32 streams_;
  metrics::Counter transfers_;
  metrics::Counter bytes_moved_;
};

// GZIP cost/ratio model. Output sizes come from blob content
// (Blob::compressed_size); this models the CPU time.
struct GzipModel {
  double compress_bps = 10.0 * 1_MiB;  // gzip -6 on a ~1 GHz PIII
  double inflate_bps = 30.0 * 1_MiB;

  // Compress `src_bytes` on `cpu` (if provided, contends with other jobs);
  // returns nothing — output size is the caller's blob-derived figure.
  void compress(sim::Process& p, sim::CpuPool* cpu, u64 src_bytes) const {
    SimDuration work = transfer_time(src_bytes, compress_bps);
    if (cpu != nullptr) {
      cpu->run(p, work);
    } else {
      p.delay(work);
    }
  }
  void inflate(sim::Process& p, sim::CpuPool* cpu, u64 dst_bytes) const {
    SimDuration work = transfer_time(dst_bytes, inflate_bps);
    if (cpu != nullptr) {
      cpu->run(p, work);
    } else {
      p.delay(work);
    }
  }
};

}  // namespace gvfs::ssh
