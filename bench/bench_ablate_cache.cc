// Ablation: proxy disk cache geometry. Sweeps associativity, block size and
// capacity (the per-application tunables §3.2.1 motivates) for a fixed
// random-access VM workload over the WAN. The workload runs twice with a
// kernel-cache drop in between (a session boundary), so the second run
// exercises exactly the proxy disk cache; we report its time and miss rate.
#include "bench_util.h"
#include "workload/synthetic.h"

using namespace gvfs;

namespace {

struct Config {
  u32 assoc;
  u64 block;
  u64 capacity;
};

Result<std::pair<double, double>> run_one(const Config& c, bench::MetricsLog& mlog) {
  core::TestbedOptions opt;
  opt.scenario = core::Scenario::kWanCached;
  opt.block_cache.associativity = c.assoc;
  opt.block_cache.block_size = c.block;
  opt.block_cache.capacity_bytes = c.capacity;
  core::Testbed bed(opt);

  workload::SyntheticConfig wcfg;
  wcfg.file_bytes = 96_MiB;
  wcfg.io_size = 16_KiB;
  wcfg.ops = 4000;
  wcfg.read_fraction = 0.85;
  wcfg.seed = 0x1;
  workload::SyntheticWorkload wl(wcfg);

  double second_run_s = 0;
  Status st = Status::ok();
  bed.kernel().run_process("bench", [&](sim::Process& p) {
    core::VmSetupOptions vopt;
    vopt.spec = bench::app_vm_spec();
    auto setup = core::prepare_vm(p, bed, vopt);
    if (!setup.is_ok()) {
      st = setup.status();
      return;
    }
    if (!wl.install(*setup->guest).is_ok()) {
      st = err(ErrCode::kInternal, "install failed");
      return;
    }
    bed.drop_all_caches();
    setup->vm->guest_cache().drop_all();
    // Run 1: populate the proxy cache.
    if (auto r = wl.run(p, *setup->guest); !r.is_ok()) {
      st = r.status();
      return;
    }
    // Session boundary: kernel/guest caches cold, proxy cache persists.
    bed.nfs_client()->drop_caches();
    setup->vm->guest_cache().drop_all();
    bed.block_cache()->reset_stats();
    SimTime t0 = p.now();
    if (auto r = wl.run(p, *setup->guest); !r.is_ok()) {
      st = r.status();
      return;
    }
    second_run_s = to_seconds(p.now() - t0);
  });
  if (!st.is_ok()) return st;
  bench::require_no_failed_processes(bed.kernel(), "ablate_cache");
  mlog.capture("assoc" + std::to_string(c.assoc) + "_block" + fmt_bytes(c.block) +
                   "_cap" + fmt_bytes(c.capacity),
               bed);
  const auto* cache = bed.block_cache();
  double miss_rate = static_cast<double>(cache->misses()) /
                     static_cast<double>(cache->hits() + cache->misses());
  return std::make_pair(second_run_s, miss_rate);
}

}  // namespace

int main() {
  bench::BenchReport rep("ablate_cache");
  bench::MetricsLog mlog;
  bench::banner(
      "Ablation: proxy cache geometry (2nd-session random 85/15 mix over WAN)");
  bench::Table table({"assoc", "block", "capacity", "2nd-run time (s)", "proxy miss rate"});
  for (const Config& c : std::initializer_list<Config>{
           {1, 32_KiB, 64_MiB},
           {4, 32_KiB, 64_MiB},
           {16, 32_KiB, 64_MiB},
           {16, 8_KiB, 64_MiB},
           {16, 16_KiB, 64_MiB},
           {16, 32_KiB, 16_MiB},  // capacity far below working set
           {16, 32_KiB, 8_GiB},   // paper configuration
       }) {
    auto r = run_one(c, mlog);
    if (!r.is_ok()) {
      std::fprintf(stderr, "config failed: %s\n", r.status().to_string().c_str());
      return 1;
    }
    table.add_row({std::to_string(c.assoc), fmt_bytes(c.block), fmt_bytes(c.capacity),
                   fmt_double(r->first, 1), fmt_double(100.0 * r->second, 1) + "%"});
  }
  rep.add_table("cache_geometry", table);
  mlog.attach(rep);
  rep.write();
  table.print();
  std::printf("\nExpectation: capacity dominates; associativity removes conflict\n"
              "misses at tight capacity; larger blocks amortize WAN latency.\n");
  return 0;
}
