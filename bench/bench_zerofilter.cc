// §3.2.2 text statistic: resuming a 512 MB-RAM RedHat 7.3 VM suspended
// post-boot issues 65,750 NFS reads of which 60,452 are satisfied locally by
// the zero-block map. This bench reproduces the experiment: a 512 MB memory
// state read in full through a GVFS proxy with a zero-map-only meta-data
// file at the plain-mount 8 KB rsize.
#include "bench_util.h"
#include "vm/vm_image.h"

using namespace gvfs;

int main() {
  bench::BenchReport rep("zerofilter");
  bench::banner("Zero-block filtering on a 512 MB post-boot memory state");

  core::TestbedOptions opt;
  opt.scenario = core::Scenario::kWanCached;
  opt.net.gvfs_rsize = 8_KiB;  // match the paper's per-read granularity
  core::Testbed bed(opt);

  vm::VmImageSpec spec = bench::app_vm_spec();
  auto paths = bed.install_image(spec);
  if (!paths.is_ok()) return 1;
  // Replace the default (file-channel) meta-data with a zero-map-only one so
  // every read goes down the block path and zero ranges are filtered.
  vm::VmImagePaths server_paths{bed.image_dir(), spec.name};
  if (!vm::generate_vmss_metadata(bed.image_fs(), server_paths, 8_KiB,
                                  /*with_file_channel=*/false)
           .is_ok()) {
    return 1;
  }

  double elapsed = 0;
  Status st = Status::ok();
  bed.kernel().run_process("resume", [&](sim::Process& p) {
    if (Status m = bed.mount(p); !m.is_ok()) {
      st = m;
      return;
    }
    SimTime t0 = p.now();
    auto data = bed.image_session().read_all(p, paths->vmss());
    if (!data.is_ok()) {
      st = data.status();
      return;
    }
    elapsed = to_seconds(p.now() - t0);
    // Integrity: the reconstructed state matches the golden image.
    if (blob::content_hash(**data) != blob::content_hash(*vm::memory_state_blob(spec))) {
      st = err(ErrCode::kIo, "content mismatch after zero filtering");
    }
  });
  if (!st.is_ok()) {
    std::fprintf(stderr, "failed: %s\n", st.to_string().c_str());
    return 1;
  }
  bench::require_no_failed_processes(bed.kernel(), "zerofilter");

  u64 client_reads = bed.nfs_client()->rpcs_sent(nfs::Proc::kRead);
  u64 filtered = bed.client_proxy()->zero_filtered_reads();
  bench::Table table({"metric", "measured", "paper"});
  table.add_row({"NFS reads issued by client", std::to_string(client_reads), "65750"});
  table.add_row({"reads filtered by zero map", std::to_string(filtered), "60452"});
  table.add_row(
      {"filter rate",
       fmt_double(100.0 * static_cast<double>(filtered) / static_cast<double>(client_reads),
                  1) +
           "%",
       "91.9%"});
  table.add_row({"full read of memory state", fmt_double(elapsed, 1) + " s", "-"});
  table.print();

  rep.add_table("zerofilter", table);
  rep.add_scalar("client_reads", client_reads);
  rep.add_scalar("reads_filtered", filtered);
  rep.add_scalar("read_elapsed_s", elapsed);
  rep.add_metrics("zerofilter", bed.metrics_json());
  rep.write();
  return 0;
}
