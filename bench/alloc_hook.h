// Global allocation counters for the benches. Linking alloc_hook.cc into a
// binary overrides operator new/delete to bump plain single-threaded
// counters (the fiber-based kernel runs every sim process on one OS
// thread); the BenchReport harness samples them around the measured region
// so every BENCH_*.json can report allocation churn alongside wall-clock
// time.
#pragma once

#include <cstddef>
#include <cstdint>

namespace gvfs::bench {

struct AllocCounters {
  std::uint64_t count = 0;  // operator new calls
  std::uint64_t bytes = 0;  // bytes requested
};

// Snapshot of the process-wide counters (zeros if alloc_hook.cc not linked).
AllocCounters alloc_snapshot();

}  // namespace gvfs::bench
