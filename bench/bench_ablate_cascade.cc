// Ablation: multi-level proxy cascades (§3.2.1 "a series of proxies ... can
// be cascaded between client and server"). Measures first-clone time on a
// fresh compute server when N-1 earlier compute servers on the same LAN
// already pulled the image: without a second-level LAN proxy every server
// pays the WAN; with one, only the first does.
#include "bench_util.h"
#include "vm/vm_cloner.h"

using namespace gvfs;

namespace {

Result<std::vector<double>> run(bool lan_level, int nodes, bench::MetricsLog& mlog) {
  core::TestbedOptions opt;
  opt.scenario = core::Scenario::kWanCached;
  opt.second_level_lan_cache = lan_level;
  opt.compute_nodes = nodes;
  core::Testbed bed(opt);
  auto image = bed.install_image(bench::clone_vm_spec());
  if (!image.is_ok()) return image.status();
  std::vector<double> times;
  Status st = Status::ok();
  // Each node clones once, in turn — fresh node, possibly warm LAN level.
  bed.kernel().run_process("seq", [&](sim::Process& p) {
    for (int i = 0; i < nodes; ++i) {
      if (Status m = bed.mount(p, i); !m.is_ok()) {
        st = m;
        return;
      }
      vm::CloneConfig cfg;
      cfg.image = *image;
      cfg.clone_dir = "/clones/n" + std::to_string(i);
      SimTime t0 = p.now();
      auto result =
          vm::VmCloner::clone(p, bed.image_session(i), bed.local_session(i), cfg);
      if (!result.is_ok()) {
        st = result.status();
        return;
      }
      times.push_back(to_seconds(p.now() - t0));
    }
  });
  if (!st.is_ok()) return st;
  bench::require_no_failed_processes(bed.kernel(), "ablate_cascade");
  mlog.capture(lan_level ? "2level" : "1level", bed);
  return times;
}

}  // namespace

int main() {
  bench::BenchReport rep("ablate_cascade");
  bench::MetricsLog mlog;
  constexpr int kNodes = 4;
  bench::banner("Ablation: second-level LAN cache proxy across cluster nodes");
  auto flat = run(false, kNodes, mlog);
  auto cascaded = run(true, kNodes, mlog);
  if (!flat.is_ok() || !cascaded.is_ok()) {
    std::fprintf(stderr, "run failed\n");
    return 1;
  }
  bench::Table table({"node (fresh compute server)", "1-level (s)", "2-level LAN (s)"});
  for (int i = 0; i < kNodes; ++i) {
    table.add_row({std::to_string(i + 1), fmt_double((*flat)[static_cast<size_t>(i)], 1),
                   fmt_double((*cascaded)[static_cast<size_t>(i)], 1)});
  }
  rep.add_table("cascade", table);
  mlog.attach(rep);
  rep.write();
  table.print();
  std::printf("\nExpectation: with the cascade, node 1 pays the WAN once and nodes\n"
              "2..%d clone at LAN speed (the WAN-S3 effect).\n", kNodes);
  return 0;
}
