// Figure 3: SPECseis96 execution times (minutes:seconds) per phase, in the
// Local / LAN / WAN / WAN+C scenarios with cold caches.
//
// Paper shape: phase 4 (compute) within ~10% across all scenarios; phase 1
// (creates the large trace file) ~2.1x faster under WAN+C than WAN thanks to
// write-back; total WAN+C ~33% below WAN.
#include "bench_util.h"
#include "workload/specseis.h"

using namespace gvfs;

int main() {
  bench::BenchReport rep("fig3_specseis");
  bench::banner("Figure 3: SPECseis96 benchmark execution times (mm:ss)");
  bench::Table table({"scenario", "phase1", "phase2", "phase3", "phase4", "total"});

  double wan_total = 0, wanc_total = 0, wan_p1 = 0, wanc_p1 = 0;
  double local_p4 = 0, worst_p4 = 0;
  for (core::Scenario s : bench::app_scenarios()) {
    core::TestbedOptions opt;
    opt.scenario = s;
    bench::shrink_host_caches(opt);
    core::Testbed bed(opt);
    workload::SpecSeisWorkload wl;
    auto report = bench::run_app_benchmark(bed, wl);
    if (!report.is_ok()) {
      std::fprintf(stderr, "scenario %s failed: %s\n", core::scenario_name(s),
                   report.status().to_string().c_str());
      return 1;
    }
    table.add_row({core::scenario_name(s), fmt_mmss(report->phase_s("phase1")),
                   fmt_mmss(report->phase_s("phase2")), fmt_mmss(report->phase_s("phase3")),
                   fmt_mmss(report->phase_s("phase4")), fmt_mmss(report->total_s())});
    if (s == core::Scenario::kWan) {
      wan_total = report->total_s();
      wan_p1 = report->phase_s("phase1");
    }
    if (s == core::Scenario::kWanCached) {
      wanc_total = report->total_s();
      wanc_p1 = report->phase_s("phase1");
    }
    if (s == core::Scenario::kLocal) local_p4 = report->phase_s("phase4");
    worst_p4 = std::max(worst_p4, report->phase_s("phase4"));
    rep.add_metrics(core::scenario_name(s), bed.metrics_json());
  }
  table.print();

  std::printf("\nphase-1 WAN / WAN+C speedup : %.2fx  (paper: 2.1x)\n", wan_p1 / wanc_p1);
  std::printf("total WAN+C vs WAN          : %.0f%% lower (paper: ~33%%)\n",
              100.0 * (1.0 - wanc_total / wan_total));
  std::printf("phase-4 spread across setups: %.1f%% (paper: within 10%%)\n",
              100.0 * (worst_p4 / local_p4 - 1.0));

  rep.add_table("fig3", table);
  rep.add_scalar("phase1_wan_over_wanc", wan_p1 / wanc_p1);
  rep.add_scalar("total_wanc_vs_wan_pct", 100.0 * (1.0 - wanc_total / wan_total));
  rep.add_scalar("phase4_spread_pct", 100.0 * (worst_p4 / local_p4 - 1.0));
  rep.write();
  return 0;
}
