// Figure 4: LaTeX benchmark execution times (seconds) — the first iteration,
// the mean of iterations 2-20, and the total, per scenario.
//
// Paper values: first iteration ~12 s Local/LAN vs 225.67 s WAN / 217.33 s
// WAN+C; mean of the rest 11.51 / 12.54 / 19.53 / 13.37 s. Also reported
// alongside in the text: downloading the whole VM state up-front would cost
// 2818 s, and flushing dirty write-back blocks after the session ~160 s vs
// 4633 s for uploading the entire state.
#include "bench_util.h"
#include "ssh/ssh.h"
#include "workload/latex.h"

using namespace gvfs;

int main() {
  bench::BenchReport rep("fig4_latex");
  bench::banner("Figure 4: LaTeX benchmark execution times (seconds)");
  bench::Table table({"scenario", "first iteration", "mean iters 2-20", "total"});

  double wan_mean = 0, wanc_mean = 0, local_mean = 0;
  double flush_s_out = 0, upload_s_out = 0, dl_out = 0;
  for (core::Scenario s : bench::app_scenarios()) {
    core::TestbedOptions opt;
    opt.scenario = s;
    bench::shrink_host_caches(opt);
    core::Testbed bed(opt);
    workload::LatexWorkload wl;
    auto report = bench::run_app_benchmark(bed, wl);
    if (!report.is_ok()) {
      std::fprintf(stderr, "scenario %s failed: %s\n", core::scenario_name(s),
                   report.status().to_string().c_str());
      return 1;
    }
    double first = report->phases.front().seconds;
    double rest = 0;
    for (std::size_t i = 1; i < report->phases.size(); ++i) {
      rest += report->phases[i].seconds;
    }
    double mean = rest / static_cast<double>(report->phases.size() - 1);
    table.add_row({core::scenario_name(s), fmt_double(first, 2), fmt_double(mean, 2),
                   fmt_double(report->total_s(), 2)});
    if (s == core::Scenario::kWan) wan_mean = mean;
    if (s == core::Scenario::kWanCached) wanc_mean = mean;
    if (s == core::Scenario::kLocal) local_mean = mean;

    // After the WAN+C session: cost of the middleware write-back signal
    // (flush of cached dirty blocks) vs uploading the entire VM state.
    if (s == core::Scenario::kWanCached) {
      double flush_s = 0;
      bed.kernel().run_process("flush", [&](sim::Process& p) {
        SimTime t0 = p.now();
        (void)bed.signal_write_back(p);
        flush_s = to_seconds(p.now() - t0);
      });
      bench::require_no_failed_processes(bed.kernel(), "fig4 flush");
      sim::SimKernel k2;
      sim::Link wan(k2, "wan", opt.net.wan);
      ssh::Scp scp(wan, opt.net.wan_cipher);
      double upload_s = 0;
      k2.run_process("scp", [&](sim::Process& p) {
        scp.transfer(p, bench::app_vm_spec().memory_bytes +
                            bench::app_vm_spec().disk_bytes);
        upload_s = to_seconds(p.now());
      });
      bench::require_no_failed_processes(k2, "fig4 scp upload");
      std::printf("write-back flush of dirty blocks: %.0f s (paper: ~160 s)\n", flush_s);
      std::printf("uploading entire VM state instead: %.0f s (paper: 4633 s)\n", upload_s);
      flush_s_out = flush_s;
      upload_s_out = upload_s;
    }
    rep.add_metrics(core::scenario_name(s), bed.metrics_json());
  }
  std::printf("\n");
  table.print();

  // Text claim: fetching the whole state before the session would dwarf the
  // on-demand start-up latency.
  {
    core::TestbedOptions opt;
    sim::SimKernel k;
    sim::Link wan(k, "wan", opt.net.wan);
    ssh::Scp scp(wan, opt.net.wan_cipher);
    double dl = 0;
    k.run_process("scp", [&](sim::Process& p) {
      scp.transfer(p, bench::app_vm_spec().memory_bytes + bench::app_vm_spec().disk_bytes);
      dl = to_seconds(p.now());
    });
    bench::require_no_failed_processes(k, "fig4 scp download");
    std::printf("\nfull-state download before session: %.0f s (paper: 2818 s)\n", dl);
    dl_out = dl;
  }
  std::printf("WAN+C mean vs Local : %.0f%% slower (paper: ~8%%-16%%)\n",
              100.0 * (wanc_mean / local_mean - 1.0));
  std::printf("WAN   mean vs WAN+C : %.0f%% slower (paper: ~46%%)\n",
              100.0 * (wan_mean / wanc_mean - 1.0));

  rep.add_table("fig4", table);
  rep.add_scalar("writeback_flush_s", flush_s_out);
  rep.add_scalar("full_state_upload_s", upload_s_out);
  rep.add_scalar("full_state_download_s", dl_out);
  rep.add_scalar("wanc_vs_local_pct", 100.0 * (wanc_mean / local_mean - 1.0));
  rep.add_scalar("wan_vs_wanc_pct", 100.0 * (wan_mean / wanc_mean - 1.0));
  rep.write();
  return 0;
}
