// Content-addressed dedup sweep (DESIGN.md §5.9): N cloned VMs — identical
// golden images installed under distinct names — are resumed through one
// GVFS proxy over the WAN. Without dedup every clone re-fetches its own
// copy of each nonzero block; with the per-block fingerprint table in the
// .vmss meta-data the proxy aliases identical blocks onto frames already
// resident, so the N-clone storm costs the origin roughly one clone's worth
// of unique-block fetches. Sweeps clone count x zero fraction (the
// complement of the duplicate-data fraction inside one image) and checks
// the <= 1.1x origin-cost bound, then measures modeled wire compression on
// the same workload.
#include "bench_util.h"
#include "vm/vm_image.h"

using namespace gvfs;

namespace {

struct CellResult {
  u64 origin_fetches = 0;  // block-cache misses that reached the origin
  u64 dedup_filtered = 0;  // misses resolved by the fingerprint probe
  u64 aliases = 0;         // cache frames shared via the dedup store
  u64 bytes_saved = 0;     // resident bytes avoided by aliasing
  u64 wan_down_bytes = 0;
  double elapsed = 0;
};

vm::VmImageSpec clone_spec(int i, double zero_fraction) {
  vm::VmImageSpec spec;
  spec.name = "clone" + std::to_string(i);
  spec.memory_bytes = 32_MiB;
  spec.disk_bytes = 64_MiB;
  spec.mem_zero_fraction = zero_fraction;
  spec.seed = 42;  // same seed for every clone: content-identical images
  return spec;
}

CellResult run_cell(int clones, double zero_fraction, bool dedup, bool compress,
                    bench::MetricsLog& log, const std::string& key) {
  core::TestbedOptions opt;
  opt.scenario = core::Scenario::kWanCached;
  opt.dedup_blocks = dedup;
  opt.wire_compression = compress;
  core::Testbed bed(opt);

  std::vector<vm::VmImagePaths> images;
  for (int i = 0; i < clones; ++i) {
    vm::VmImageSpec spec = clone_spec(i, zero_fraction);
    auto paths = bed.install_image(spec);
    if (!paths.is_ok()) {
      std::fprintf(stderr, "install failed: %s\n", paths.status().to_string().c_str());
      std::exit(1);
    }
    // Zero-map + fingerprint meta-data without the file-channel action, so
    // every clone resumes down the block path the dedup store serves.
    vm::VmImagePaths server_paths{bed.image_dir(), spec.name};
    u32 fp_bs = dedup ? static_cast<u32>(bed.options().block_cache.block_size) : 0;
    if (!vm::generate_vmss_metadata(bed.image_fs(), server_paths, 8_KiB,
                                    /*with_file_channel=*/false, fp_bs)
             .is_ok()) {
      std::fprintf(stderr, "meta generation failed\n");
      std::exit(1);
    }
    images.push_back(*paths);
  }

  u64 expect_hash = blob::content_hash(*vm::memory_state_blob(clone_spec(0, zero_fraction)));
  CellResult res;
  Status st = Status::ok();
  bed.kernel().run_process("resume-clones", [&](sim::Process& p) {
    if (Status m = bed.mount(p); !m.is_ok()) {
      st = m;
      return;
    }
    SimTime t0 = p.now();
    for (const auto& img : images) {
      auto data = bed.image_session().read_all(p, img.vmss());
      if (!data.is_ok()) {
        st = data.status();
        return;
      }
      // Aliased frames must reconstruct the exact bytes a private copy would.
      if (blob::content_hash(**data) != expect_hash) {
        st = err(ErrCode::kIo, "content mismatch after dedup aliasing");
        return;
      }
    }
    res.elapsed = to_seconds(p.now() - t0);
  });
  if (!st.is_ok()) {
    std::fprintf(stderr, "%s failed: %s\n", key.c_str(), st.to_string().c_str());
    std::exit(1);
  }
  bench::require_no_failed_processes(bed.kernel(), "dedup");

  res.dedup_filtered = bed.client_proxy()->dedup_filtered_reads();
  res.origin_fetches = bed.block_cache()->misses() - res.dedup_filtered;
  res.aliases = bed.block_cache()->dedup_aliases();
  res.bytes_saved = bed.block_cache()->dedup_bytes_saved();
  res.wan_down_bytes = bed.wan_down()->bytes_sent();
  log.capture(key, bed);
  return res;
}

}  // namespace

int main() {
  bench::BenchReport rep("dedup");
  bench::MetricsLog log;
  bench::banner("Content-addressed block dedup: clone-count x zero-fraction sweep");

  const std::vector<double> zero_fracs = {0.0, 0.45, 0.92};
  const std::vector<int> clone_counts = {1, 4, 8};

  bench::Table table({"zero_frac", "clones", "dedup", "origin_fetches",
                      "fp_probe_hits", "aliases", "MiB_saved", "elapsed_s"});
  bool gate_ok = true;
  for (double zf : zero_fracs) {
    u64 baseline = 0;  // one clone's unique-block fetches, dedup on
    for (int n : clone_counts) {
      for (int d = 0; d <= 1; ++d) {
        bool dedup = d == 1;
        std::string key = "zf" + fmt_double(zf, 2) + "_n" + std::to_string(n) +
                          (dedup ? "_on" : "_off");
        CellResult res = run_cell(n, zf, dedup, /*compress=*/false, log, key);
        table.add_row({fmt_double(zf, 2), std::to_string(n), dedup ? "on" : "off",
                       std::to_string(res.origin_fetches),
                       std::to_string(res.dedup_filtered),
                       std::to_string(res.aliases),
                       fmt_double(static_cast<double>(res.bytes_saved) / (1_MiB), 1),
                       fmt_double(res.elapsed, 2)});
        rep.add_scalar(key + ".origin_fetches", res.origin_fetches);
        rep.add_scalar(key + ".aliases", res.aliases);
        if (dedup && n == 1) baseline = res.origin_fetches;
        // Acceptance bound: the N-clone duplicate-heavy storm costs the
        // origin at most 1.1x one clone's unique-block fetches.
        if (dedup && static_cast<double>(res.origin_fetches) >
                         1.1 * static_cast<double>(baseline)) {
          gate_ok = false;
          std::fprintf(stderr,
                       "dedup gate failed: zf=%g clones=%d fetches=%llu baseline=%llu\n",
                       zf, n, static_cast<unsigned long long>(res.origin_fetches),
                       static_cast<unsigned long long>(baseline));
        }
      }
    }
  }
  table.print();
  rep.add_table("dedup_sweep", table);

  bench::banner("Modeled wire compression (4 clones, zero_frac 0.45, dedup on)");
  bench::Table ctable({"wire_compression", "wan_down_MiB", "elapsed_s"});
  for (int c = 0; c <= 1; ++c) {
    bool compress = c == 1;
    std::string key = std::string("compress_") + (compress ? "on" : "off");
    CellResult res = run_cell(4, 0.45, /*dedup=*/true, compress, log, key);
    ctable.add_row({compress ? "on" : "off",
                    fmt_double(static_cast<double>(res.wan_down_bytes) / (1_MiB), 1),
                    fmt_double(res.elapsed, 2)});
    rep.add_scalar(key + ".wan_down_bytes", res.wan_down_bytes);
  }
  ctable.print();
  rep.add_table("wire_compression", ctable);

  log.attach(rep);
  rep.write();
  if (!gate_ok) return 1;
  return 0;
}
