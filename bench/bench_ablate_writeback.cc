// Ablation: write policy. The paper's central write-side claim (§3.2.1) is
// that write-back proxy caching hides WAN write latency that kernel clients
// (write-through-ish staging) cannot. Compares write-through vs write-back
// on a write-heavy phase-1-style workload, including the deferred
// write-back-signal cost that write-back pays later.
#include "bench_util.h"
#include "workload/synthetic.h"

using namespace gvfs;

namespace {

struct Row {
  double run_s = 0;
  double flush_s = 0;
};

Result<Row> run_policy(cache::WritePolicy policy, bench::MetricsLog& mlog) {
  core::TestbedOptions opt;
  opt.scenario = core::Scenario::kWanCached;
  opt.write_policy = policy;
  core::Testbed bed(opt);
  workload::SyntheticConfig wcfg;
  wcfg.file_bytes = 48_MiB;
  wcfg.io_size = 64_KiB;
  wcfg.ops = 768;
  wcfg.read_fraction = 0.1;  // write-dominated (trace-file generation)
  wcfg.sequential = true;
  workload::SyntheticWorkload wl(wcfg);
  Row row;
  auto report = bench::run_app_benchmark(bed, wl);
  if (!report.is_ok()) return report.status();
  row.run_s = report->total_s();
  bed.kernel().run_process("signal", [&](sim::Process& p) {
    SimTime t0 = p.now();
    (void)bed.signal_write_back(p);
    row.flush_s = to_seconds(p.now() - t0);
  });
  bench::require_no_failed_processes(bed.kernel(), "ablate_writeback");
  mlog.capture(policy == cache::WritePolicy::kWriteBack ? "write_back" : "write_through",
               bed);
  return row;
}

}  // namespace

int main() {
  bench::BenchReport rep("ablate_writeback");
  bench::MetricsLog mlog;
  bench::banner("Ablation: proxy write policy (write-dominated workload over WAN)");
  auto wt = run_policy(cache::WritePolicy::kWriteThrough, mlog);
  auto wb = run_policy(cache::WritePolicy::kWriteBack, mlog);
  if (!wt.is_ok() || !wb.is_ok()) {
    std::fprintf(stderr, "run failed\n");
    return 1;
  }
  bench::Table table(
      {"policy", "application time (s)", "deferred write-back (s)", "user-perceived"});
  table.add_row({"write-through", fmt_double(wt->run_s, 1), fmt_double(wt->flush_s, 1),
                 fmt_double(wt->run_s, 1) + " s"});
  table.add_row({"write-back", fmt_double(wb->run_s, 1), fmt_double(wb->flush_s, 1),
                 fmt_double(wb->run_s, 1) + " s (+ offline flush)"});
  rep.add_table("write_policy", table);
  mlog.attach(rep);
  rep.add_scalar("writeback_speedup_x", wt->run_s / wb->run_s);
  rep.write();
  table.print();
  std::printf("\napplication speedup from write-back: %.1fx (paper: phase-1 2.1x)\n",
              wt->run_s / wb->run_s);
  std::printf("the flush happens \"when the user is off-line or the session is idle\"\n");
  return 0;
}
