// Boot storm (§3.2.3 at grid scale): N non-persistent clones of one golden
// image resume simultaneously through the proxy cascade — client proxies
// over SSH to a shared LAN second-level cache (single-flight miss
// coalescing), which fetches each block from the WAN origin exactly once.
//
// The paper demonstrates the cascade with a handful of compute servers; the
// fiber kernel lets us run the scenario the middleware was designed for:
// 1,000+ VMs resuming in one storm. Reported per node count: storm makespan,
// mean/p50/p99/max resume latency, and origin offload (fraction of the
// cluster's state-file bytes NOT shipped across the WAN — served instead
// from the cascade's caches and the zero-map meta-data).
#include <algorithm>

#include "bench_util.h"
#include "vm/vm_monitor.h"

using namespace gvfs;

namespace {

// Golden image for the storm: post-boot suspended state, mostly zero pages.
// Smaller memory than the §4.3 cloning image (64 MB vs 320 MB) so the
// 1,000-node storm stays comfortably inside the wall-clock budget; the
// cascade behaviour (coalescing, offload, queueing spread) is unchanged.
vm::VmImageSpec storm_vm_spec() {
  vm::VmImageSpec spec;
  spec.name = "golden";
  spec.memory_bytes = 64_MiB;
  spec.disk_bytes = 256_MiB;
  spec.seed = 42;
  return spec;
}

struct StormResult {
  double makespan = 0;            // first arrival -> last VM resumed
  double mean = 0, p50 = 0, p99 = 0, max = 0;
  u64 origin_bytes = 0;           // shipped across the WAN (origin downlink)
  u64 state_bytes = 0;            // .vmss bytes the cluster's VMMs consumed
  [[nodiscard]] double offload_pct() const {
    return state_bytes == 0
               ? 0.0
               : 100.0 * (1.0 - static_cast<double>(origin_bytes) /
                                    static_cast<double>(state_bytes));
  }
};

double percentile(std::vector<double> v, double pct) {
  std::sort(v.begin(), v.end());
  std::size_t idx = static_cast<std::size_t>(
      pct / 100.0 * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

Result<StormResult> run_storm(int nodes, bench::MetricsLog& mlog,
                              const std::string& mkey) {
  core::TestbedOptions opt;
  opt.scenario = core::Scenario::kWanCached;
  opt.compute_nodes = nodes;
  opt.shared_l2_cache = true;  // cluster-shared L2 + single-flight coalescing
  opt.enable_meta = true;      // zero-map meta-data: zero pages never fetched
  // The storm reads only the aggregate links/server instruments plus its own
  // per-node timings; per-node registration is O(nodes x instruments).
  opt.per_node_metrics = false;
  core::Testbed bed(opt);

  auto image = bed.install_image(storm_vm_spec());
  if (!image.is_ok()) return image.status();

  std::vector<double> resume_s(static_cast<std::size_t>(nodes), 0.0);
  u64 state_bytes = 0;
  SimTime end = 0;
  Status st = Status::ok();
  for (int i = 0; i < nodes; ++i) {
    bed.kernel().spawn("vm" + std::to_string(i), [&, i](sim::Process& p) {
      if (Status m = bed.mount(p, i); !m.is_ok()) {
        st = m;
        return;
      }
      SimTime t0 = p.now();
      vm::VmMonitor vmm;
      vmm.attach(bed.image_session(i), image->cfg(), image->vmss(),
                 bed.image_session(i), image->flat_vmdk());
      if (Status r = vmm.resume(p); !r.is_ok()) {
        st = r;
        return;
      }
      resume_s[static_cast<std::size_t>(i)] = to_seconds(p.now() - t0);
      state_bytes += vmm.vmss_bytes_read();
      end = std::max(end, p.now());
    });
  }
  bed.kernel().run();
  if (!st.is_ok()) return st;
  bench::require_no_failed_processes(bed.kernel(), "boot_storm");

  StormResult out;
  out.makespan = to_seconds(end);
  double sum = 0;
  for (double s : resume_s) sum += s;
  out.mean = sum / static_cast<double>(nodes);
  out.p50 = percentile(resume_s, 50.0);
  out.p99 = percentile(resume_s, 99.0);
  out.max = percentile(resume_s, 100.0);
  out.origin_bytes = bed.wan_down()->bytes_sent();
  out.state_bytes = state_bytes;
  mlog.capture(mkey, bed);
  return out;
}

}  // namespace

int main() {
  bench::BenchReport rep("boot_storm");
  bench::MetricsLog mlog;
  bench::banner(
      "Boot storm: N clones of one 64 MB golden image resume through the "
      "proxy cascade (shared L2, meta-data on)");

  const std::vector<int> kSweep = {10, 100, 1000};
  bench::Table table({"nodes", "makespan", "mean resume", "p50", "p99", "max",
                      "origin MB", "offload"});
  StormResult last;
  for (int n : kSweep) {
    auto r = run_storm(n, mlog, "storm_" + std::to_string(n));
    if (!r.is_ok()) {
      std::fprintf(stderr, "storm(%d) failed: %s\n", n,
                   r.status().to_string().c_str());
      return 1;
    }
    table.add_row({std::to_string(n), fmt_double(r->makespan, 1) + " s",
                   fmt_double(r->mean, 1) + " s", fmt_double(r->p50, 1) + " s",
                   fmt_double(r->p99, 1) + " s", fmt_double(r->max, 1) + " s",
                   fmt_double(static_cast<double>(r->origin_bytes) / (1 << 20), 1),
                   fmt_double(r->offload_pct(), 1) + " %"});
    last = *r;
  }
  table.print();

  std::printf(
      "\n1000-node storm: p99 resume %.1f s, origin shipped %.1f MB of %.1f "
      "MB consumed (offload %.1f%%)\n",
      last.p99, static_cast<double>(last.origin_bytes) / (1 << 20),
      static_cast<double>(last.state_bytes) / (1 << 20), last.offload_pct());

  rep.add_table("storm_sweep", table);
  rep.add_scalar("p99_resume_seconds_1000", last.p99);
  rep.add_scalar("makespan_seconds_1000", last.makespan);
  rep.add_scalar("origin_bytes_1000", last.origin_bytes);
  rep.add_scalar("state_bytes_1000", last.state_bytes);
  rep.add_scalar("origin_offload_pct_1000", last.offload_pct());
  mlog.attach(rep);
  rep.write();
  return 0;
}
