// Async batched write-back + shared L2 single-flight bench.
//
// Part A — flush pipeline: the same write-dominated workload (the
// ablate_writeback shape) is run twice in write-back mode; the deferred
// middleware flush is timed with the synchronous per-block FILE_SYNC path
// vs the asynchronous flusher (pipelined UNSTABLE bursts + one COMMIT per
// file). Acceptance: batched flush >= 2x faster.
//
// Part B — miss coalescing: eight compute nodes cold-read the same image
// through a cluster-shared L2 block-cache proxy with single-flight miss
// coalescing. Acceptance: origin-server READs stay within an epsilon of ONE
// client's cold miss count — concurrent same-block misses share one fetch.
#include "bench_util.h"
#include "workload/synthetic.h"

using namespace gvfs;

namespace {

struct FlushRow {
  double run_s = 0;
  double flush_s = 0;
  u64 unstable_writes = 0;
  u64 commits = 0;
};

Result<FlushRow> run_flush(bool async_writeback, bench::MetricsLog& mlog) {
  core::TestbedOptions opt;
  opt.scenario = core::Scenario::kWanCached;
  opt.write_policy = cache::WritePolicy::kWriteBack;
  opt.enable_async_writeback = async_writeback;
  core::Testbed bed(opt);
  workload::SyntheticConfig wcfg;
  wcfg.file_bytes = 48_MiB;
  wcfg.io_size = 64_KiB;
  wcfg.ops = 768;
  wcfg.read_fraction = 0.1;  // write-dominated (trace-file generation)
  wcfg.sequential = true;
  workload::SyntheticWorkload wl(wcfg);
  FlushRow row;
  auto report = bench::run_app_benchmark(bed, wl);
  if (!report.is_ok()) return report.status();
  row.run_s = report->total_s();
  bed.kernel().run_process("signal", [&](sim::Process& p) {
    SimTime t0 = p.now();
    (void)bed.signal_write_back(p);
    row.flush_s = to_seconds(p.now() - t0);
  });
  bench::require_no_failed_processes(bed.kernel(), "shared_writeback_flush");
  row.unstable_writes = bed.client_proxy()->flush_unstable_writes();
  row.commits = bed.client_proxy()->flush_commits();
  mlog.capture(async_writeback ? "flush_async" : "flush_sync", bed);
  return row;
}

constexpr int kNodes = 8;
constexpr u64 kImageBytes = 16_MiB;

struct ShareRow {
  double wall_s = 0;
  u64 origin_reads = 0;
  u64 one_client_cold_misses = 0;
  u64 single_flight_leads = 0;
  u64 single_flight_waits = 0;
};

Result<ShareRow> run_shared_reads(bench::MetricsLog& mlog) {
  core::TestbedOptions opt;
  opt.scenario = core::Scenario::kWanCached;
  opt.compute_nodes = kNodes;
  opt.shared_l2_cache = true;
  opt.enable_meta = false;  // pure block path: every byte rides READ RPCs
  opt.generate_image_meta = false;
  core::Testbed bed(opt);
  blob::BlobRef image = blob::make_synthetic(71, kImageBytes, 0.2, 2.0);
  if (auto put = bed.image_fs().put_file(bed.image_dir() + "/img", image);
      !put.is_ok()) {
    return put.status();
  }
  Status st = Status::ok();
  SimTime end = 0;
  u64 want = blob::content_hash(*image);
  for (int i = 0; i < kNodes; ++i) {
    bed.kernel().spawn("reader" + std::to_string(i), [&, i](sim::Process& p) {
      if (Status m = bed.mount(p, i); !m.is_ok()) {
        st = m;
        return;
      }
      auto data = bed.image_session(i).read_all(p, "/img");
      if (!data.is_ok()) {
        st = data.status();
        return;
      }
      if (blob::content_hash(**data) != want) {
        st = err(ErrCode::kIo, "shared read corrupted");
      }
      end = std::max(end, p.now());
    });
  }
  bed.kernel().run();
  if (!st.is_ok()) return st;
  bench::require_no_failed_processes(bed.kernel(), "shared_writeback_reads");
  ShareRow row;
  row.wall_s = to_seconds(end);
  row.origin_reads = bed.server()->calls(nfs::Proc::kRead);
  row.one_client_cold_misses = bed.block_cache(0)->misses();
  row.single_flight_leads = bed.lan_proxy()->single_flight_leads();
  row.single_flight_waits = bed.lan_proxy()->single_flight_waits();
  mlog.capture("shared_l2", bed);
  return row;
}

}  // namespace

int main() {
  bench::BenchReport rep("shared_writeback");
  bench::MetricsLog mlog;
  bench::banner("Async batched write-back + shared L2 single-flight");

  auto sync = run_flush(false, mlog);
  auto async = run_flush(true, mlog);
  if (!sync.is_ok() || !async.is_ok()) {
    std::fprintf(stderr, "flush run failed\n");
    return 1;
  }
  double speedup = sync->flush_s / async->flush_s;
  bench::Table flush_table({"flush mode", "deferred write-back (s)",
                            "UNSTABLE writes", "COMMITs"});
  flush_table.add_row({"per-block FILE_SYNC", fmt_double(sync->flush_s, 1),
                       std::to_string(sync->unstable_writes),
                       std::to_string(sync->commits)});
  flush_table.add_row({"pipelined UNSTABLE + COMMIT", fmt_double(async->flush_s, 1),
                       std::to_string(async->unstable_writes),
                       std::to_string(async->commits)});
  rep.add_table("flush_pipeline", flush_table);
  rep.add_scalar("flush_sync_s", sync->flush_s);
  rep.add_scalar("flush_async_s", async->flush_s);
  rep.add_scalar("flush_speedup_x", speedup);

  auto shared = run_shared_reads(mlog);
  if (!shared.is_ok()) {
    std::fprintf(stderr, "shared read run failed: %s\n",
                 shared.status().to_string().c_str());
    return 1;
  }
  u64 epsilon = shared->one_client_cold_misses / 10 + 8;
  bench::Table share_table({"metric", "value"});
  share_table.add_row({"nodes reading the image", std::to_string(kNodes)});
  share_table.add_row({"origin-server READs", std::to_string(shared->origin_reads)});
  share_table.add_row(
      {"one client's cold misses", std::to_string(shared->one_client_cold_misses)});
  share_table.add_row(
      {"single-flight leads (L2)", std::to_string(shared->single_flight_leads)});
  share_table.add_row(
      {"single-flight waits (L2)", std::to_string(shared->single_flight_waits)});
  rep.add_table("shared_l2", share_table);
  rep.add_scalar("origin_reads", shared->origin_reads);
  rep.add_scalar("one_client_cold_misses", shared->one_client_cold_misses);
  rep.add_scalar("single_flight_waits", shared->single_flight_waits);
  mlog.attach(rep);
  rep.write();

  flush_table.print();
  std::printf("\nbatched flush speedup: %.1fx (acceptance: >= 2x)\n", speedup);
  share_table.print();
  std::printf("\n%d nodes cost the origin %s READs vs %s for one cold client\n",
              kNodes, std::to_string(shared->origin_reads).c_str(),
              std::to_string(shared->one_client_cold_misses).c_str());

  if (speedup < 2.0) {
    std::fprintf(stderr, "FAIL: flush speedup %.2fx < 2x\n", speedup);
    return 1;
  }
  if (shared->origin_reads > shared->one_client_cold_misses + epsilon) {
    std::fprintf(stderr, "FAIL: origin reads %llu exceed one client's misses %llu + %llu\n",
                 static_cast<unsigned long long>(shared->origin_reads),
                 static_cast<unsigned long long>(shared->one_client_cold_misses),
                 static_cast<unsigned long long>(epsilon));
    return 1;
  }
  if (shared->single_flight_waits == 0) {
    std::fprintf(stderr, "FAIL: no single-flight coalescing observed\n");
    return 1;
  }
  return 0;
}
