// Table 1: total time to clone eight VM images sequentially (WAN-S1) versus
// in parallel onto eight compute servers (WAN-P), with cold and warm caches.
//
// Paper: WAN-S1 1056 s cold / 200 s warm; WAN-P 150.3 s cold / 32 s warm —
// parallel cloning scales because each SSH flow is window/cipher-limited far
// below the Abilene path capacity, and the image server pipelines
// compression across its two CPUs.
#include "bench_util.h"
#include "vm/vm_cloner.h"

using namespace gvfs;

namespace {

constexpr int kClones = 8;

std::vector<vm::VmImagePaths> install_images(core::Testbed& bed) {
  std::vector<vm::VmImagePaths> out;
  for (int i = 0; i < kClones; ++i) {
    out.push_back(*bed.install_image(
        bench::clone_vm_spec("vm" + std::to_string(i), 42 + static_cast<u64>(i))));
  }
  return out;
}

// Sequential: one node clones all eight images back to back; the "warm" pass
// repeats the sequence with every cache loaded.
Result<std::pair<double, double>> run_sequential(bench::MetricsLog& mlog) {
  core::TestbedOptions opt;
  opt.scenario = core::Scenario::kWanCached;
  core::Testbed bed(opt);
  auto images = install_images(bed);
  double cold = 0, warm = 0;
  Status st = Status::ok();
  bed.kernel().run_process("cloner", [&](sim::Process& p) {
    if (Status m = bed.mount(p); !m.is_ok()) {
      st = m;
      return;
    }
    for (int pass = 0; pass < 2; ++pass) {
      SimTime t0 = p.now();
      for (int i = 0; i < kClones; ++i) {
        vm::CloneConfig cfg;
        cfg.image = images[static_cast<std::size_t>(i)];
        cfg.clone_dir = "/clones/p" + std::to_string(pass) + "i" + std::to_string(i);
        cfg.clone_name = "c" + std::to_string(pass) + "_" + std::to_string(i);
        auto result = vm::VmCloner::clone(p, bed.image_session(), bed.local_session(), cfg);
        if (!result.is_ok()) {
          st = result.status();
          return;
        }
        bed.nfs_client()->drop_caches();
      }
      (pass == 0 ? cold : warm) = to_seconds(p.now() - t0);
    }
  });
  if (!st.is_ok()) return st;
  bench::require_no_failed_processes(bed.kernel(), "table1");
  mlog.capture("wan_s1_sequential", bed);
  return std::make_pair(cold, warm);
}

// Parallel: eight nodes share the image server, its proxy and the WAN pipe.
Result<std::pair<double, double>> run_parallel(bench::MetricsLog& mlog) {
  core::TestbedOptions opt;
  opt.scenario = core::Scenario::kWanCached;
  opt.compute_nodes = kClones;
  core::Testbed bed(opt);
  auto images = install_images(bed);
  double cold = 0, warm = 0;
  Status st = Status::ok();
  for (int pass = 0; pass < 2; ++pass) {
    SimTime start = bed.kernel().now();
    SimTime end = start;
    for (int i = 0; i < kClones; ++i) {
      bed.kernel().spawn("clone" + std::to_string(i), [&, i, pass](sim::Process& p) {
        if (Status m = bed.mount(p, i); !m.is_ok()) {
          st = m;
          return;
        }
        vm::CloneConfig cfg;
        cfg.image = images[static_cast<std::size_t>(i)];
        cfg.clone_dir = "/clones/p" + std::to_string(pass) + "i" + std::to_string(i);
        cfg.clone_name = "c" + std::to_string(pass) + "_" + std::to_string(i);
        auto result =
            vm::VmCloner::clone(p, bed.image_session(i), bed.local_session(i), cfg);
        if (!result.is_ok()) st = result.status();
        end = std::max(end, p.now());
      });
    }
    bed.kernel().run();
    if (!st.is_ok()) return st;
    (pass == 0 ? cold : warm) = to_seconds(end - start);
    for (int i = 0; i < kClones; ++i) bed.nfs_client(i)->drop_caches();
  }
  mlog.capture("wan_p_parallel", bed);
  return std::make_pair(cold, warm);
}

}  // namespace

int main() {
  bench::BenchReport rep("table1_parallel");
  bench::MetricsLog mlog;
  bench::banner("Table 1: total time of cloning eight VM images (seconds)");
  auto seq = run_sequential(mlog);
  if (!seq.is_ok()) {
    std::fprintf(stderr, "sequential failed: %s\n", seq.status().to_string().c_str());
    return 1;
  }
  auto par = run_parallel(mlog);
  if (!par.is_ok()) {
    std::fprintf(stderr, "parallel failed: %s\n", par.status().to_string().c_str());
    return 1;
  }

  bench::Table table({"", "total (caches cold)", "total (caches warm)"});
  table.add_row({"WAN-S1 (sequential)", fmt_double(seq->first, 1) + " s",
                 fmt_double(seq->second, 1) + " s"});
  table.add_row({"WAN-P (8 nodes parallel)", fmt_double(par->first, 1) + " s",
                 fmt_double(par->second, 1) + " s"});
  table.print();

  std::printf("\nparallel speedup, cold caches: %.0f%% (paper: >700%%)\n",
              100.0 * seq->first / par->first);
  std::printf("parallel speedup, warm caches: %.0f%% (paper: >600%%)\n",
              100.0 * seq->second / par->second);

  rep.add_table("table1", table);
  rep.add_scalar("parallel_speedup_cold_pct", 100.0 * seq->first / par->first);
  rep.add_scalar("parallel_speedup_warm_pct", 100.0 * seq->second / par->second);
  mlog.attach(rep);
  rep.write();
  return 0;
}
