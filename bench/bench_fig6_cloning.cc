// Figure 6: VM cloning times (seconds) for a sequence of eight clonings of
// 320 MB-RAM / 1.6 GB-disk images, plus the two baselines quoted in the
// caption: full-image SCP copy (1127 s) and memory-state copy from a plain
// NFS mount (2060 s).
//
// Scenarios: Local; WAN-S1 (one golden image cloned eight times — temporal
// locality); WAN-S2 (eight distinct images — no locality); WAN-S3 (eight
// distinct images pre-cached on a LAN second-level proxy).
#include "bench_util.h"
#include "ssh/ssh.h"
#include "vm/vm_cloner.h"

using namespace gvfs;

namespace {

struct SeqResult {
  std::vector<double> times;
};

// Clone `count` images sequentially on node 0; images[i] selects the golden
// image for the i-th cloning.
Result<SeqResult> run_sequence(core::Testbed& bed,
                               const std::vector<vm::VmImagePaths>& images,
                               bool prewarm_lan = false) {
  SeqResult out;
  Status st = Status::ok();
  bed.kernel().run_process("cloner", [&](sim::Process& p) {
    if (prewarm_lan) {
      for (const auto& img : images) {
        Status w = bed.prewarm_lan_cache(p, img);
        if (!w.is_ok()) {
          st = w;
          return;
        }
      }
    }
    if (Status m = bed.mount(p); !m.is_ok()) {
      st = m;
      return;
    }
    for (std::size_t i = 0; i < images.size(); ++i) {
      vm::CloneConfig cfg;
      cfg.image = images[i];
      cfg.clone_dir = "/clones/c" + std::to_string(i);
      cfg.clone_name = "clone" + std::to_string(i);
      SimTime t0 = p.now();
      auto result = vm::VmCloner::clone(p, bed.image_session(), bed.local_session(), cfg);
      if (!result.is_ok()) {
        st = result.status();
        return;
      }
      out.times.push_back(to_seconds(p.now() - t0));
      // Each cloning is a fresh middleware session: kernel client caches are
      // cold, proxy disk caches persist (that is the point).
      if (auto* client = bed.nfs_client()) client->drop_caches();
    }
  });
  if (!st.is_ok()) return st;
  bench::require_no_failed_processes(bed.kernel(), "fig6 sequence");
  return out;
}

std::vector<vm::VmImagePaths> install_images(core::Testbed& bed, int count,
                                             bool distinct) {
  std::vector<vm::VmImagePaths> out;
  for (int i = 0; i < count; ++i) {
    if (distinct || i == 0) {
      auto paths = bed.install_image(
          bench::clone_vm_spec("vm" + std::to_string(distinct ? i : 0),
                               distinct ? 42 + static_cast<u64>(i) : 42));
      out.push_back(*paths);
    } else {
      out.push_back(out.front());
    }
  }
  return out;
}

}  // namespace

int main() {
  constexpr int kClones = 8;
  bench::BenchReport rep("fig6_cloning");
  bench::banner("Figure 6: VM cloning times (seconds), images 1..8");
  bench::Table table({"clone#", "Local", "WAN-S1", "WAN-S2", "WAN-S3"});

  std::vector<std::vector<double>> columns;

  // Local.
  {
    core::TestbedOptions opt;
    opt.scenario = core::Scenario::kLocal;
    core::Testbed bed(opt);
    auto images = install_images(bed, kClones, /*distinct=*/false);
    auto r = run_sequence(bed, images);
    if (!r.is_ok()) return 1;
    columns.push_back(r->times);
    rep.add_metrics("local", bed.metrics_json());
  }
  // WAN-S1: one image, eight clonings.
  {
    core::TestbedOptions opt;
    opt.scenario = core::Scenario::kWanCached;
    core::Testbed bed(opt);
    auto images = install_images(bed, kClones, /*distinct=*/false);
    auto r = run_sequence(bed, images);
    if (!r.is_ok()) return 1;
    columns.push_back(r->times);
    rep.add_metrics("wan_s1", bed.metrics_json());
  }
  // WAN-S2: eight distinct images.
  {
    core::TestbedOptions opt;
    opt.scenario = core::Scenario::kWanCached;
    core::Testbed bed(opt);
    auto images = install_images(bed, kClones, /*distinct=*/true);
    auto r = run_sequence(bed, images);
    if (!r.is_ok()) return 1;
    columns.push_back(r->times);
    rep.add_metrics("wan_s2", bed.metrics_json());
  }
  // WAN-S3: eight distinct images, pre-cached on the LAN second level.
  {
    core::TestbedOptions opt;
    opt.scenario = core::Scenario::kWanCached;
    opt.second_level_lan_cache = true;
    core::Testbed bed(opt);
    auto images = install_images(bed, kClones, /*distinct=*/true);
    auto r = run_sequence(bed, images, /*prewarm_lan=*/true);
    if (!r.is_ok()) return 1;
    columns.push_back(r->times);
    rep.add_metrics("wan_s3", bed.metrics_json());
  }

  for (int i = 0; i < kClones; ++i) {
    std::vector<std::string> row{std::to_string(i + 1)};
    for (const auto& col : columns) {
      row.push_back(fmt_double(col[static_cast<std::size_t>(i)], 1));
    }
    table.add_row(std::move(row));
  }
  table.print();

  // ---- caption baselines ----------------------------------------------------
  core::TestbedOptions opt;
  {
    // SCP of the entire image (memory + disk) over the WAN.
    sim::SimKernel k;
    sim::Link wan(k, "wan", opt.net.wan);
    ssh::Scp scp(wan, opt.net.wan_cipher);
    double t = 0;
    k.run_process("scp", [&](sim::Process& p) {
      auto spec = bench::clone_vm_spec();
      scp.transfer(p, spec.memory_bytes + spec.disk_bytes);
      t = to_seconds(p.now());
    });
    bench::require_no_failed_processes(k, "fig6 scp baseline");
    std::printf("\nSCP full-image copy            : %.0f s (paper: 1127 s)\n", t);
    rep.add_scalar("scp_full_image_s", t);
  }
  {
    // Plain NFS mount: memory state copied block-by-block, no GVFS support.
    core::TestbedOptions popt;
    popt.scenario = core::Scenario::kPlainNfsWan;
    core::Testbed bed(popt);
    auto paths = bed.install_image(bench::clone_vm_spec());
    double t = 0;
    Status st = Status::ok();
    bed.kernel().run_process("cloner", [&](sim::Process& p) {
      if (Status m = bed.mount(p); !m.is_ok()) {
        st = m;
        return;
      }
      vm::CloneConfig cfg;
      cfg.image = *paths;
      cfg.clone_dir = "/clones/nfs";
      SimTime t0 = p.now();
      auto result = vm::VmCloner::clone(p, bed.image_session(), bed.local_session(), cfg);
      if (!result.is_ok()) st = result.status();
      t = to_seconds(p.now() - t0);
    });
    if (!st.is_ok()) {
      std::fprintf(stderr, "plain NFS clone failed: %s\n", st.to_string().c_str());
      return 1;
    }
    bench::require_no_failed_processes(bed.kernel(), "fig6 plain NFS baseline");
    std::printf("plain-NFS-mount memory copy    : %.0f s (paper: 2060 s)\n", t);
    rep.add_scalar("plain_nfs_memory_copy_s", t);
    rep.add_metrics("plain_nfs_baseline", bed.metrics_json());
  }
  std::printf("GVFS first clone (cold)        : %.0f s (paper: <160 s)\n",
              columns[2].front());
  std::printf("GVFS re-clone (warm, local)    : %.0f s (paper: ~25 s)\n",
              columns[1].back());
  std::printf("GVFS clone via LAN 2nd level   : %.0f s (paper: ~80 s)\n",
              columns[3].back());

  rep.add_table("fig6", table);
  rep.add_scalar("first_clone_cold_s", columns[2].front());
  rep.add_scalar("reclone_warm_s", columns[1].back());
  rep.add_scalar("clone_lan_second_level_s", columns[3].back());
  rep.write();
  return 0;
}
