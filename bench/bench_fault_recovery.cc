// Fault injection & recovery: NFS hard-mount retransmission and proxy
// degraded mode under deterministic WAN faults (packet loss, a server
// crash/restart mid-transfer, and a full partition window).
//
// Three experiments, all on the WAN+C topology with a small VM image so the
// bench stays quick:
//   A. Memory-state resume read under 0% / 1% / 5% per-message loss — the
//      workload must complete with byte-identical content, paying only
//      retransmission delays. The 5% run is executed twice to demonstrate
//      that one seed gives one timeline.
//   B. VM cloning across a server crash/restart window: the client rides out
//      the reboot on retransmissions (hard-mount semantics) and the clone
//      still verifies.
//   C. A partition with the proxy in degraded mode and a soft-mount retry
//      budget: cached reads keep being served, a write is queued locally and
//      replayed on reconnect, and the recovery time is reported.
#include "bench_util.h"
#include "blob/blob.h"
#include "vm/vm_cloner.h"

using namespace gvfs;

namespace {

// Small image: 16 MB memory state, half zero pages (so zero filtering does
// not trivialise the transfer), 64 MB disk.
vm::VmImageSpec small_spec() {
  vm::VmImageSpec spec;
  spec.name = "vmf";
  spec.memory_bytes = 16_MiB;
  spec.disk_bytes = 64_MiB;
  spec.mem_zero_fraction = 0.5;
  spec.seed = 7;
  return spec;
}

struct ReadRun {
  double elapsed_s = 0;
  bool content_ok = false;
  u64 retransmits = 0;
  u64 timeouts = 0;
  u64 requests_dropped = 0;
  u64 replies_dropped = 0;
};

// Experiment A unit: mount, read the full .vmss through the proxy path,
// verify against the golden bytes.
Result<ReadRun> run_resume_read(double drop_rate, bench::MetricsLog* mlog) {
  core::TestbedOptions opt;
  opt.scenario = core::Scenario::kWanCached;
  opt.generate_image_meta = false;  // block-RPC path, not the SCP file channel
  opt.enable_fault_injection = drop_rate > 0;
  opt.fault.drop_rate = drop_rate;
  core::Testbed bed(opt);
  vm::VmImageSpec spec = small_spec();
  GVFS_ASSIGN_OR_RETURN(vm::VmImagePaths paths, bed.install_image(spec));

  ReadRun out;
  Status st = Status::ok();
  bed.kernel().run_process("resume", [&](sim::Process& p) {
    if (Status m = bed.mount(p); !m.is_ok()) {
      st = m;
      return;
    }
    SimTime t0 = p.now();
    auto data = bed.image_session().read_all(p, paths.vmss());
    if (!data.is_ok()) {
      st = data.status();
      return;
    }
    out.elapsed_s = to_seconds(p.now() - t0);
    out.content_ok = blob::content_hash(**data) ==
                     blob::content_hash(*vm::memory_state_blob(spec));
  });
  if (!st.is_ok()) return st;
  bench::require_no_failed_processes(bed.kernel(), "fault_recovery resume read");
  if (const auto* retry = bed.retry_channel()) {
    out.retransmits = retry->retransmits();
    out.timeouts = retry->timeouts();
  }
  if (const auto* inj = bed.fault_injector()) {
    out.requests_dropped = inj->requests_dropped();
    out.replies_dropped = inj->replies_dropped();
  }
  if (mlog != nullptr) {
    char key[32];
    std::snprintf(key, sizeof(key), "resume_drop%.0fpct", drop_rate * 100.0);
    mlog->capture(key, bed);
  }
  return out;
}

struct CloneRun {
  double clone_s = 0;
  u64 retransmits = 0;
  u64 restarts = 0;
  u64 drc_inserts = 0;
};

// Experiment B unit: clone the image once; optionally a server crash window
// sits in the middle of the transfer.
Result<CloneRun> run_clone(bool with_crash, bench::MetricsLog& mlog) {
  core::TestbedOptions opt;
  opt.scenario = core::Scenario::kWanCached;
  opt.generate_image_meta = false;  // keep the transfer on the RPC path
  opt.enable_fault_injection = with_crash;
  if (with_crash) {
    // Light loss plus a 15 s reboot mid-clone.
    opt.fault.drop_rate = 0.005;
    opt.fault.crashes.push_back(sim::FaultWindow{10 * kSecond, 25 * kSecond});
  }
  core::Testbed bed(opt);
  GVFS_ASSIGN_OR_RETURN(vm::VmImagePaths image, bed.install_image(small_spec()));

  CloneRun out;
  Status st = Status::ok();
  bed.kernel().run_process("cloner", [&](sim::Process& p) {
    if (Status m = bed.mount(p); !m.is_ok()) {
      st = m;
      return;
    }
    vm::CloneConfig cfg;
    cfg.image = image;
    cfg.clone_dir = "/clones/f";
    SimTime t0 = p.now();
    auto r = vm::VmCloner::clone(p, bed.image_session(), bed.local_session(), cfg);
    if (!r.is_ok()) st = r.status();
    out.clone_s = to_seconds(p.now() - t0);
  });
  if (!st.is_ok()) return st;
  bench::require_no_failed_processes(bed.kernel(), "fault_recovery clone");
  if (const auto* retry = bed.retry_channel()) out.retransmits = retry->retransmits();
  if (const auto* inj = bed.fault_injector()) out.restarts = inj->restarts_fired();
  if (const auto* srv = bed.server()) out.drc_inserts = srv->drc_inserts();
  mlog.capture(with_crash ? "clone_crash" : "clone_nofault", bed);
  return out;
}

struct DegradedRun {
  bool reads_ok = false;
  bool writeback_ok = false;
  u64 degraded_reads = 0;
  u64 queued = 0;
  u64 replayed = 0;
  double recovery_s = 0;
  double outage_s = 0;
};

// Experiment C: partition [100 s, 160 s); proxy in degraded mode with a
// soft-mount retry budget so upstream timeouts surface quickly.
Result<DegradedRun> run_degraded_partition(bench::MetricsLog& mlog) {
  core::TestbedOptions opt;
  opt.scenario = core::Scenario::kWanCached;
  opt.generate_image_meta = false;  // exercise the block cache, not file cache
  opt.write_policy = cache::WritePolicy::kWriteThrough;
  opt.enable_fault_injection = true;
  opt.degraded_proxy = true;
  opt.fault.partitions.push_back(sim::FaultWindow{100 * kSecond, 160 * kSecond});
  opt.retry.timeout = 250 * kMillisecond;
  opt.retry.max_retransmits = 2;  // soft mount: let kTimeout reach the proxy
  core::Testbed bed(opt);
  vm::VmImageSpec spec = small_spec();
  GVFS_ASSIGN_OR_RETURN(vm::VmImagePaths paths, bed.install_image(spec));

  DegradedRun out;
  Status st = Status::ok();
  bed.kernel().run_process("session", [&](sim::Process& p) {
    if (Status m = bed.mount(p); !m.is_ok()) {
      st = m;
      return;
    }
    // Warm the proxy cache before the partition opens.
    auto warm = bed.image_session().read_all(p, paths.vmss());
    if (!warm.is_ok()) {
      st = warm.status();
      return;
    }
    u64 golden = blob::content_hash(*vm::memory_state_blob(spec));

    // Inside the partition: cached reads must still be served.
    p.delay_until(110 * kSecond);
    bed.nfs_client()->drop_caches();  // force the reads down to the proxy
    auto data = bed.image_session().read_all(p, paths.vmss());
    if (!data.is_ok()) {
      st = data.status();
      return;
    }
    out.reads_ok = blob::content_hash(**data) == golden;

    // A write during the partition: acknowledged locally, queued for replay.
    blob::BlobRef patch = blob::make_synthetic(11, 64_KiB, 0.0, 1.0);
    if (Status w = bed.image_session().write(p, paths.vmss(), 0, patch); !w.is_ok()) {
      st = w;
      return;
    }
    if (Status f = bed.nfs_client()->flush(p); !f.is_ok()) {
      st = f;
      return;
    }

    // After the partition heals: middleware reconnect signal replays the
    // queue; the patched range must then be readable from the server.
    p.delay_until(170 * kSecond);
    if (Status r = bed.client_proxy()->signal_reconnect(p); !r.is_ok()) {
      st = r;
      return;
    }
    bed.nfs_client()->drop_caches();
    bed.block_cache()->invalidate_all();
    auto back = bed.image_session().read(p, paths.vmss(), 0, 64_KiB);
    if (!back.is_ok()) {
      st = back.status();
      return;
    }
    out.writeback_ok = blob::content_hash(**back) == blob::content_hash(*patch);
  });
  if (!st.is_ok()) return st;
  bench::require_no_failed_processes(bed.kernel(), "fault_recovery degraded");
  const auto* proxy = bed.client_proxy();
  out.degraded_reads = proxy->degraded_reads();
  out.queued = proxy->queued_writebacks();
  out.replayed = proxy->replayed_writebacks();
  out.recovery_s = to_seconds(proxy->last_recovery_time());
  out.outage_s = to_seconds(proxy->outage_time());
  if (proxy->pending_writebacks() != 0 || proxy->upstream_down()) {
    return err(ErrCode::kInternal, "degraded-mode queue did not drain");
  }
  mlog.capture("degraded_partition", bed);
  return out;
}

}  // namespace

int main() {
  bench::BenchReport rep("fault_recovery");
  bench::MetricsLog mlog;

  // ---- A: resume read under loss -------------------------------------------
  bench::banner("Fault injection: 16 MB memory-state read under WAN loss");
  bench::Table table({"drop rate", "read time (s)", "retransmits", "timeouts",
                      "req lost", "rep lost", "content"});
  const double rates[] = {0.0, 0.01, 0.05};
  double read_s[3] = {0, 0, 0};
  for (int i = 0; i < 3; ++i) {
    auto r = run_resume_read(rates[i], &mlog);
    if (!r.is_ok()) {
      std::fprintf(stderr, "resume read failed: %s\n", r.status().to_string().c_str());
      return 1;
    }
    read_s[i] = r->elapsed_s;
    char pct[16];
    std::snprintf(pct, sizeof(pct), "%.0f%%", rates[i] * 100.0);
    table.add_row({pct, fmt_double(r->elapsed_s, 1), std::to_string(r->retransmits),
                   std::to_string(r->timeouts), std::to_string(r->requests_dropped),
                   std::to_string(r->replies_dropped), r->content_ok ? "ok" : "MISMATCH"});
    if (!r->content_ok) return 1;
  }
  table.print();

  // Same seed, same schedule: a second 5% run must land on the same virtual
  // timeline to the nanosecond.
  {
    auto again = run_resume_read(0.05, nullptr);
    if (!again.is_ok()) return 1;
    std::printf("\nsame-seed 5%% rerun      : %s (%.6f s vs %.6f s)\n",
                again->elapsed_s == read_s[2] ? "identical timeline" : "DIVERGED",
                again->elapsed_s, read_s[2]);
    if (again->elapsed_s != read_s[2]) return 1;
  }

  // ---- B: clone across a server crash/restart -------------------------------
  bench::banner("Server crash/restart during VM cloning");
  auto base = run_clone(/*with_crash=*/false, mlog);
  auto crash = run_clone(/*with_crash=*/true, mlog);
  if (!base.is_ok() || !crash.is_ok()) {
    std::fprintf(stderr, "clone run failed\n");
    return 1;
  }
  std::printf("clone, no faults        : %.1f s\n", base->clone_s);
  std::printf("clone, crash at 10-25 s : %.1f s (retransmits %llu, reboots %llu)\n",
              crash->clone_s, static_cast<unsigned long long>(crash->retransmits),
              static_cast<unsigned long long>(crash->restarts));
  std::printf("recovery overhead       : %.1f s\n", crash->clone_s - base->clone_s);

  // ---- C: degraded-mode partition ------------------------------------------
  bench::banner("Degraded proxy across a 60 s partition");
  auto deg = run_degraded_partition(mlog);
  if (!deg.is_ok()) {
    std::fprintf(stderr, "degraded run failed: %s\n", deg.status().to_string().c_str());
    return 1;
  }
  std::printf("cached reads during partition : %s (%llu blocks served)\n",
              deg->reads_ok ? "ok" : "MISMATCH",
              static_cast<unsigned long long>(deg->degraded_reads));
  std::printf("write-backs queued / replayed : %llu / %llu (%s)\n",
              static_cast<unsigned long long>(deg->queued),
              static_cast<unsigned long long>(deg->replayed),
              deg->writeback_ok ? "verified" : "MISMATCH");
  std::printf("outage / recovery time        : %.1f s / %.3f s\n", deg->outage_s,
              deg->recovery_s);
  if (!deg->reads_ok || !deg->writeback_ok) return 1;

  rep.add_table("resume_read_under_loss", table);
  rep.add_scalar("read_s_drop0", read_s[0]);
  rep.add_scalar("read_s_drop1pct", read_s[1]);
  rep.add_scalar("read_s_drop5pct", read_s[2]);
  rep.add_scalar("clone_nofault_s", base->clone_s);
  rep.add_scalar("clone_crash_s", crash->clone_s);
  rep.add_scalar("clone_crash_retransmits", crash->retransmits);
  rep.add_scalar("degraded_reads", deg->degraded_reads);
  rep.add_scalar("queued_writebacks", deg->queued);
  rep.add_scalar("replayed_writebacks", deg->replayed);
  rep.add_scalar("recovery_s", deg->recovery_s);
  mlog.attach(rep);
  rep.write();
  return 0;
}
