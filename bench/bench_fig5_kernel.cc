// Figure 5: kernel-compilation benchmark execution times (h:mm:ss) for four
// phases over two consecutive runs (cold, then warm caches) per scenario.
//
// Paper shape: first (cold) WAN+C run ~84% over Local; second (warm) run
// within ~9% of Local and <=4% of LAN, while staying >30% faster than WAN.
#include "bench_util.h"
#include "workload/kernel_compile.h"

using namespace gvfs;

int main() {
  bench::BenchReport rep("fig5_kernel");
  bench::banner("Figure 5: kernel compilation execution times (h:mm:ss)");
  bench::Table table({"scenario", "run", "make dep", "make bzImage", "make modules",
                      "modules_install", "total"});

  double local_run[2] = {0, 0}, lan_run2 = 0, wan_run2 = 0, wanc_run[2] = {0, 0};
  for (core::Scenario s : bench::app_scenarios()) {
    core::TestbedOptions opt;
    opt.scenario = s;
    bench::shrink_host_caches(opt);
    core::Testbed bed(opt);

    // One VM session, two consecutive builds: first cold, second warm.
    std::vector<workload::WorkloadReport> reports;
    Status st = Status::ok();
    bed.kernel().run_process("bench", [&](sim::Process& p) {
      core::VmSetupOptions vopt;
      vopt.spec = bench::app_vm_spec();
      auto setup = core::prepare_vm(p, bed, vopt);
      if (!setup.is_ok()) {
        st = setup.status();
        return;
      }
      workload::KernelCompileWorkload wl;
      if (!wl.install(*setup->guest).is_ok()) {
        st = err(ErrCode::kInternal, "install");
        return;
      }
      bed.drop_all_caches();
      setup->vm->guest_cache().drop_all();
      for (int run = 0; run < 2; ++run) {
        auto report = wl.run(p, *setup->guest);
        if (!report.is_ok()) {
          st = report.status();
          return;
        }
        reports.push_back(*report);
      }
    });
    if (!st.is_ok() || reports.size() != 2) {
      std::fprintf(stderr, "scenario %s failed: %s\n", core::scenario_name(s),
                   st.to_string().c_str());
      return 1;
    }
    bench::require_no_failed_processes(bed.kernel(), "fig5");
    for (int run = 0; run < 2; ++run) {
      const auto& r = reports[static_cast<std::size_t>(run)];
      table.add_row({core::scenario_name(s), run == 0 ? "first (cold)" : "second (warm)",
                     fmt_hhmm(r.phase_s("make dep")), fmt_hhmm(r.phase_s("make bzImage")),
                     fmt_hhmm(r.phase_s("make modules")),
                     fmt_hhmm(r.phase_s("make modules_install")), fmt_hhmm(r.total_s())});
      double total = r.total_s();
      if (s == core::Scenario::kLocal) local_run[run] = total;
      if (s == core::Scenario::kLan && run == 1) lan_run2 = total;
      if (s == core::Scenario::kWan && run == 1) wan_run2 = total;
      if (s == core::Scenario::kWanCached) wanc_run[run] = total;
    }
    rep.add_metrics(core::scenario_name(s), bed.metrics_json());
  }
  table.print();

  std::printf("\nWAN+C cold-run overhead vs Local : %.0f%% (paper: 84%%)\n",
              100.0 * (wanc_run[0] / local_run[0] - 1.0));
  std::printf("WAN+C warm-run overhead vs Local : %.0f%% (paper: 9%%)\n",
              100.0 * (wanc_run[1] / local_run[1] - 1.0));
  std::printf("WAN+C warm run vs LAN warm run   : %.0f%% slower (paper: <4%%)\n",
              100.0 * (wanc_run[1] / lan_run2 - 1.0));
  std::printf("WAN+C warm run vs WAN warm run   : %.0f%% faster (paper: >30%%)\n",
              100.0 * (1.0 - wanc_run[1] / wan_run2));

  rep.add_table("fig5", table);
  rep.add_scalar("wanc_cold_vs_local_pct", 100.0 * (wanc_run[0] / local_run[0] - 1.0));
  rep.add_scalar("wanc_warm_vs_local_pct", 100.0 * (wanc_run[1] / local_run[1] - 1.0));
  rep.add_scalar("wanc_warm_vs_lan_pct", 100.0 * (wanc_run[1] / lan_run2 - 1.0));
  rep.add_scalar("wanc_warm_vs_wan_faster_pct", 100.0 * (1.0 - wanc_run[1] / wan_run2));
  rep.write();
  return 0;
}
