// Shared harness glue for the paper-reproduction benches: table printing in
// the paper's formats and scenario/VM setup helpers.
#pragma once

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "alloc_hook.h"
#include "common/strings.h"
#include "gvfs/experiment.h"
#include "gvfs/testbed.h"
#include "workload/report.h"

namespace gvfs::bench {

// Fixed-width text table (the repo's stand-in for the paper's figures).
class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  [[nodiscard]] const std::vector<std::string>& header() const { return header_; }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const {
    return rows_;
  }

  void print() const {
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    print_row_(header_, width);
    std::string sep;
    for (std::size_t c = 0; c < width.size(); ++c) {
      sep += std::string(width[c] + 2, '-');
    }
    std::printf("%s\n", sep.c_str());
    for (const auto& row : rows_) print_row_(row, width);
  }

 private:
  static void print_row_(const std::vector<std::string>& row,
                         const std::vector<std::size_t>& width) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(width[c]), row[c].c_str());
    }
    std::printf("\n");
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

inline void banner(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
}

// Machine-readable run record: every bench writes BENCH_<name>.json holding
// host wall-clock time, allocation counts, and the simulated-time results
// (tables and scalars). The simulated section must be byte-identical across
// perf-only changes — it is the regression baseline; only wall_clock_ns and
// the alloc_* fields are expected to move.
class BenchReport {
 public:
  explicit BenchReport(std::string name)
      : name_(std::move(name)),
        // gvfs-lint: allow(determinism-clock) host wall-clock; reported outside the simulated section
        start_(std::chrono::steady_clock::now()),
        start_alloc_(alloc_snapshot()) {}

  void add_scalar(const std::string& key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    sim_.emplace_back(key, buf);
  }
  void add_scalar(const std::string& key, u64 v) {
    sim_.emplace_back(key, std::to_string(v));
  }
  void add_scalar(const std::string& key, const std::string& v) {
    sim_.emplace_back(key, quote_(v));
  }
  void add_table(const std::string& key, const Table& t) {
    std::string j = "{\"header\":";
    j += strings_(t.header());
    j += ",\"rows\":[";
    for (std::size_t r = 0; r < t.rows().size(); ++r) {
      if (r > 0) j += ",";
      j += strings_(t.rows()[r]);
    }
    j += "]}";
    sim_.emplace_back(key, std::move(j));
  }

  // Attach a testbed metrics snapshot (a rendered JSON object, typically
  // Testbed::metrics_json()) under `key` — one entry per scenario/run. They
  // land in the report's "metrics" section, outside "simulated", so metric
  // additions never disturb the byte-identical regression baseline.
  void add_metrics(const std::string& key, std::string metrics_json) {
    metrics_.emplace_back(key, std::move(metrics_json));
  }

  // Write BENCH_<name>.json into the current directory. Reports progress on
  // stderr so bench stdout stays byte-comparable across runs.
  void write() const {
    // gvfs-lint: allow(determinism-clock) host wall-clock; reported outside the simulated section
    auto wall = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    // gvfs-lint: allow(determinism-clock) host wall-clock measurement
                    std::chrono::steady_clock::now() - start_)
                    .count();
    AllocCounters now = alloc_snapshot();
    std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "BenchReport: cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"name\": %s,\n", quote_(name_).c_str());
    std::fprintf(f, "  \"wall_clock_ns\": %lld,\n",
                 static_cast<long long>(wall));
    std::fprintf(f, "  \"alloc_count\": %llu,\n",
                 static_cast<unsigned long long>(now.count - start_alloc_.count));
    std::fprintf(f, "  \"alloc_bytes\": %llu,\n",
                 static_cast<unsigned long long>(now.bytes - start_alloc_.bytes));
    std::fprintf(f, "  \"simulated\": {");
    for (std::size_t i = 0; i < sim_.size(); ++i) {
      std::fprintf(f, "%s\n    %s: %s", i > 0 ? "," : "",
                   quote_(sim_[i].first).c_str(), sim_[i].second.c_str());
    }
    std::fprintf(f, "\n  },\n  \"metrics\": {");
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      std::fprintf(f, "%s\n    %s: %s", i > 0 ? "," : "",
                   quote_(metrics_[i].first).c_str(), metrics_[i].second.c_str());
    }
    std::fprintf(f, "\n  }\n}\n");
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", path.c_str());
  }

 private:
  static std::string quote_(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default: out += c;
      }
    }
    out += "\"";
    return out;
  }
  static std::string strings_(const std::vector<std::string>& v) {
    std::string out = "[";
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i > 0) out += ",";
      out += quote_(v[i]);
    }
    out += "]";
    return out;
  }

  std::string name_;
  std::chrono::steady_clock::time_point start_;  // gvfs-lint: allow(determinism-clock) host wall-clock anchor
  AllocCounters start_alloc_;
  std::vector<std::pair<std::string, std::string>> sim_;
  std::vector<std::pair<std::string, std::string>> metrics_;
};

// Collects Testbed metrics snapshots from run helpers that own their
// testbeds (the bed is usually destroyed before the report is written), then
// attaches them to the report in capture order.
class MetricsLog {
 public:
  void capture(const std::string& key, core::Testbed& bed) {
    entries_.emplace_back(key, bed.metrics_json());
  }
  void attach(BenchReport& rep) const {
    for (const auto& e : entries_) rep.add_metrics(e.first, e.second);
  }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

// Abort the bench if any simulated process exited with an error, naming the
// casualties. Reports on stderr so bench stdout stays byte-comparable.
inline void require_no_failed_processes(sim::SimKernel& kernel, const char* context) {
  if (kernel.failed_processes() == 0) return;
  std::fprintf(stderr, "%s: %d simulated process(es) failed: %s\n", context,
               kernel.failed_processes(), kernel.failed_names_joined().c_str());
  std::exit(1);
}

// The four §4.2 execution scenarios.
inline std::vector<core::Scenario> app_scenarios() {
  return {core::Scenario::kLocal, core::Scenario::kLan, core::Scenario::kWan,
          core::Scenario::kWanCached};
}

// The paper's §4.2 VM: 512 MB RAM / 2 GB plain virtual disk, RedHat 7.3.
inline vm::VmImageSpec app_vm_spec() {
  vm::VmImageSpec spec;
  spec.name = "rh73";
  spec.memory_bytes = 512_MiB;
  spec.disk_bytes = 2_GiB;
  spec.mem_zero_fraction = 0.92;
  return spec;
}

// The §4.3 cloning image: 320 MB RAM / 1.6 GB disk.
inline vm::VmImageSpec clone_vm_spec(const std::string& name = "vm1", u64 seed = 42) {
  vm::VmImageSpec spec;
  spec.name = name;
  spec.memory_bytes = 320_MiB;
  spec.disk_bytes = u64{1638} * 1_MiB;
  spec.seed = seed;
  return spec;
}

// Page-cache sizes for the §4.2 application experiments: the VMM's 512 MB
// guest RAM leaves the 1 GB host with a small pagecache.
inline void shrink_host_caches(core::TestbedOptions& opt) {
  opt.client_page_cache_bytes = 224_MiB;
  opt.local_page_cache_bytes = 288_MiB;
}

// Run an application workload inside a VM whose state is mounted per the
// scenario. The workload is handed the guest FS; returns the report.
// Caches are cold at workload start ("un-mounting and mounting the virtual
// file system, and flushing the proxy caches" §4.2.2) unless keep_warm.
template <typename Workload>
Result<workload::WorkloadReport> run_app_benchmark(core::Testbed& bed,
                                                   Workload& wl,
                                                   bool cold_start = true) {
  Result<workload::WorkloadReport> out = err(ErrCode::kInternal, "not run");
  bed.kernel().run_process("bench", [&](sim::Process& p) {
    core::VmSetupOptions vopt;
    vopt.spec = app_vm_spec();
    auto setup = core::prepare_vm(p, bed, vopt);
    if (!setup.is_ok()) {
      out = setup.status();
      return;
    }
    if (!wl.install(*setup->guest).is_ok()) {
      out = err(ErrCode::kInternal, "install failed");
      return;
    }
    if (cold_start) {
      bed.drop_all_caches();
      setup->vm->guest_cache().drop_all();
    }
    out = wl.run(p, *setup->guest);
  });
  require_no_failed_processes(bed.kernel(), "run_app_benchmark");
  return out;
}

}  // namespace gvfs::bench
