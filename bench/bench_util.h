// Shared harness glue for the paper-reproduction benches: table printing in
// the paper's formats and scenario/VM setup helpers.
#pragma once

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/strings.h"
#include "gvfs/experiment.h"
#include "gvfs/testbed.h"
#include "workload/report.h"

namespace gvfs::bench {

// Fixed-width text table (the repo's stand-in for the paper's figures).
class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void print() const {
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    print_row_(header_, width);
    std::string sep;
    for (std::size_t c = 0; c < width.size(); ++c) {
      sep += std::string(width[c] + 2, '-');
    }
    std::printf("%s\n", sep.c_str());
    for (const auto& row : rows_) print_row_(row, width);
  }

 private:
  static void print_row_(const std::vector<std::string>& row,
                         const std::vector<std::size_t>& width) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(width[c]), row[c].c_str());
    }
    std::printf("\n");
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

inline void banner(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
}

// The four §4.2 execution scenarios.
inline std::vector<core::Scenario> app_scenarios() {
  return {core::Scenario::kLocal, core::Scenario::kLan, core::Scenario::kWan,
          core::Scenario::kWanCached};
}

// The paper's §4.2 VM: 512 MB RAM / 2 GB plain virtual disk, RedHat 7.3.
inline vm::VmImageSpec app_vm_spec() {
  vm::VmImageSpec spec;
  spec.name = "rh73";
  spec.memory_bytes = 512_MiB;
  spec.disk_bytes = 2_GiB;
  spec.mem_zero_fraction = 0.92;
  return spec;
}

// The §4.3 cloning image: 320 MB RAM / 1.6 GB disk.
inline vm::VmImageSpec clone_vm_spec(const std::string& name = "vm1", u64 seed = 42) {
  vm::VmImageSpec spec;
  spec.name = name;
  spec.memory_bytes = 320_MiB;
  spec.disk_bytes = u64{1638} * 1_MiB;
  spec.seed = seed;
  return spec;
}

// Page-cache sizes for the §4.2 application experiments: the VMM's 512 MB
// guest RAM leaves the 1 GB host with a small pagecache.
inline void shrink_host_caches(core::TestbedOptions& opt) {
  opt.client_page_cache_bytes = 224_MiB;
  opt.local_page_cache_bytes = 288_MiB;
}

// Run an application workload inside a VM whose state is mounted per the
// scenario. The workload is handed the guest FS; returns the report.
// Caches are cold at workload start ("un-mounting and mounting the virtual
// file system, and flushing the proxy caches" §4.2.2) unless keep_warm.
template <typename Workload>
Result<workload::WorkloadReport> run_app_benchmark(core::Testbed& bed,
                                                   Workload& wl,
                                                   bool cold_start = true) {
  Result<workload::WorkloadReport> out = err(ErrCode::kInternal, "not run");
  bed.kernel().run_process("bench", [&](sim::Process& p) {
    core::VmSetupOptions vopt;
    vopt.spec = app_vm_spec();
    auto setup = core::prepare_vm(p, bed, vopt);
    if (!setup.is_ok()) {
      out = setup.status();
      return;
    }
    if (!wl.install(*setup->guest).is_ok()) {
      out = err(ErrCode::kInternal, "install failed");
      return;
    }
    if (cold_start) {
      bed.drop_all_caches();
      setup->vm->guest_cache().drop_all();
    }
    out = wl.run(p, *setup->guest);
  });
  return out;
}

}  // namespace gvfs::bench
