// Counting operator new/delete, linked only into bench binaries. Relaxed
// atomics: sim processes are real OS threads (cooperatively scheduled, one
// running at a time), so counters must be shared across threads but never
// see real contention — one uncontended lock-prefixed add per allocation.
#include "alloc_hook.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};

void* counted_alloc(std::size_t n) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(n, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
}  // namespace

namespace gvfs::bench {
AllocCounters alloc_snapshot() {
  return AllocCounters{g_alloc_count.load(std::memory_order_relaxed),
                       g_alloc_bytes.load(std::memory_order_relaxed)};
}
}  // namespace gvfs::bench

void* operator new(std::size_t n) {
  void* p = counted_alloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n) {
  void* p = counted_alloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  return counted_alloc(n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return counted_alloc(n);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
