// Counting operator new/delete, linked only into bench binaries. Plain
// (non-atomic) counters: since the fiber migration every sim process runs
// on the one OS thread that called SimKernel::run, so allocation counting
// is single-threaded by construction and the hook stays off the profile —
// no lock-prefixed adds, no TLS aggregation. If a bench ever spawns real
// threads that allocate, run it under TSan: the data race on these
// counters is the desired alarm, not something to paper over.
#include "alloc_hook.h"

#include <cstdlib>
#include <new>

namespace {
std::uint64_t g_alloc_count = 0;
std::uint64_t g_alloc_bytes = 0;

void* counted_alloc(std::size_t n) noexcept {
  g_alloc_count += 1;
  g_alloc_bytes += n;
  return std::malloc(n ? n : 1);
}
}  // namespace

namespace gvfs::bench {
AllocCounters alloc_snapshot() {
  return AllocCounters{g_alloc_count, g_alloc_bytes};
}
}  // namespace gvfs::bench

void* operator new(std::size_t n) {
  void* p = counted_alloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n) {
  void* p = counted_alloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  return counted_alloc(n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return counted_alloc(n);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
