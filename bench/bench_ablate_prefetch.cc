// Ablation (§6 future work, implemented): dynamic access profiling with
// pipelined read-ahead at the client proxy. A cold sequential scan over the
// WAN is latency-bound at one 32 KB block per round trip; profiled
// pre-fetching overlaps the round trips. Sweeps the read-ahead depth, plus
// the GridFTP-style parallel-stream knob on the file channel.
#include "bench_util.h"
#include "vm/vm_cloner.h"
#include "workload/synthetic.h"

using namespace gvfs;

namespace {

Result<std::pair<double, u64>> run_scan(u32 depth, bench::MetricsLog& mlog) {
  core::TestbedOptions opt;
  opt.scenario = core::Scenario::kWanCached;
  opt.prefetch_depth = depth;
  core::Testbed bed(opt);

  workload::SyntheticConfig wcfg;
  wcfg.file_bytes = 64_MiB;
  wcfg.io_size = 64_KiB;
  wcfg.ops = 1024;  // exactly one sequential pass
  wcfg.read_fraction = 1.0;
  wcfg.sequential = true;
  workload::SyntheticWorkload wl(wcfg);
  auto report = bench::run_app_benchmark(bed, wl);
  if (!report.is_ok()) return report.status();
  mlog.capture("depth" + std::to_string(depth), bed);
  return std::make_pair(report->total_s(), bed.client_proxy()->blocks_prefetched());
}

Result<double> run_streams(u32 streams, bench::MetricsLog& mlog) {
  core::TestbedOptions opt;
  opt.scenario = core::Scenario::kWanCached;
  opt.file_channel_streams = streams;
  core::Testbed bed(opt);
  // A poorly-compressible image makes the wire transfer dominate.
  vm::VmImageSpec spec = bench::clone_vm_spec();
  spec.mem_zero_fraction = 0.10;
  spec.mem_compress_ratio = 1.3;
  auto image = bed.install_image(spec);
  if (!image.is_ok()) return image.status();
  double t = 0;
  Status st = Status::ok();
  bed.kernel().run_process("clone", [&](sim::Process& p) {
    if (Status m = bed.mount(p); !m.is_ok()) {
      st = m;
      return;
    }
    vm::CloneConfig cfg;
    cfg.image = *image;
    cfg.clone_dir = "/clones/s";
    SimTime t0 = p.now();
    auto r = vm::VmCloner::clone(p, bed.image_session(), bed.local_session(), cfg);
    if (!r.is_ok()) st = r.status();
    t = to_seconds(p.now() - t0);
  });
  if (!st.is_ok()) return st;
  bench::require_no_failed_processes(bed.kernel(), "ablate_prefetch");
  mlog.capture("streams" + std::to_string(streams), bed);
  return t;
}

}  // namespace

int main() {
  bench::BenchReport rep("ablate_prefetch");
  bench::MetricsLog mlog;
  bench::banner("Ablation: proxy read-ahead depth (cold 64 MB sequential scan, WAN)");
  bench::Table table({"prefetch depth", "scan time (s)", "blocks prefetched"});
  for (u32 depth : {0u, 2u, 4u, 8u, 16u}) {
    auto r = run_scan(depth, mlog);
    if (!r.is_ok()) {
      std::fprintf(stderr, "depth %u failed: %s\n", depth,
                   r.status().to_string().c_str());
      return 1;
    }
    table.add_row({std::to_string(depth), fmt_double(r->first, 1),
                   std::to_string(r->second)});
  }
  table.print();

  bench::banner("Ablation: parallel-stream file channel (incompressible 320 MB state)");
  bench::Table st({"streams", "cold clone time (s)"});
  for (u32 streams : {1u, 2u, 4u, 8u}) {
    auto t = run_streams(streams, mlog);
    if (!t.is_ok()) {
      std::fprintf(stderr, "streams %u failed\n", streams);
      return 1;
    }
    st.add_row({std::to_string(streams), fmt_double(*t, 1)});
  }
  rep.add_table("prefetch_depth", table);
  mlog.attach(rep);
  rep.add_table("parallel_streams", st);
  rep.write();
  st.print();
  std::printf("\nExpectation: read-ahead collapses the per-block RTT of cold\n"
              "sequential scans; parallel streams lift the per-flow ceiling until\n"
              "the shared WAN pipe saturates.\n");
  return 0;
}
