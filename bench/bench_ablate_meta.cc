// Ablation: meta-data handling. Clones the 320 MB/1.6 GB image with (a) no
// meta-data (pure block-based GVFS), (b) zero-map only, (c) the full
// compress/SCP/uncompress file channel — and sweeps the memory state's
// compressibility, since "the key to the success of this technique is the
// proper speculation of an application's behavior" plus how compressible the
// state actually is.
#include "bench_util.h"
#include "vm/vm_cloner.h"

using namespace gvfs;

namespace {

Result<double> clone_once(core::Testbed& bed, const vm::VmImagePaths& image) {
  double t = 0;
  Status st = Status::ok();
  bed.kernel().run_process("cloner", [&](sim::Process& p) {
    if (Status m = bed.mount(p); !m.is_ok()) {
      st = m;
      return;
    }
    vm::CloneConfig cfg;
    cfg.image = image;
    cfg.clone_dir = "/clones/x";
    SimTime t0 = p.now();
    auto result = vm::VmCloner::clone(p, bed.image_session(), bed.local_session(), cfg);
    if (!result.is_ok()) st = result.status();
    t = to_seconds(p.now() - t0);
  });
  if (!st.is_ok()) return st;
  bench::require_no_failed_processes(bed.kernel(), "ablate_meta");
  return t;
}

Result<double> run_mode(const std::string& mode, double zero_fraction,
                        double compress_ratio, bench::MetricsLog& mlog) {
  core::TestbedOptions opt;
  opt.scenario = core::Scenario::kWanCached;
  opt.enable_meta = true;           // proxies honour whatever meta exists
  opt.generate_image_meta = false;  // install images without meta; add per mode
  core::Testbed bed(opt);
  vm::VmImageSpec spec = bench::clone_vm_spec();
  spec.mem_zero_fraction = zero_fraction;
  spec.mem_compress_ratio = compress_ratio;
  auto image = bed.install_image(spec);
  if (!image.is_ok()) return image.status();
  vm::VmImagePaths server_paths{bed.image_dir(), spec.name};
  if (mode == "zero-map") {
    GVFS_RETURN_IF_ERROR(
        vm::generate_vmss_metadata(bed.image_fs(), server_paths, 8_KiB, false));
  } else if (mode == "file-channel") {
    GVFS_RETURN_IF_ERROR(
        vm::generate_vmss_metadata(bed.image_fs(), server_paths, 8_KiB, true));
  }
  Result<double> t = clone_once(bed, *image);
  if (t.is_ok()) {
    mlog.capture(mode + "_zf" + fmt_double(zero_fraction, 2), bed);
  }
  return t;
}

}  // namespace

int main() {
  bench::BenchReport rep("ablate_meta");
  bench::MetricsLog mlog;
  bench::banner("Ablation: meta-data handling modes for VM cloning");
  bench::Table table({"meta-data", "mem zero frac", "nonzero ratio", "clone time (s)"});
  for (const char* mode : {"none", "zero-map", "file-channel"}) {
    auto t = run_mode(mode, 0.92, 3.0, mlog);
    if (!t.is_ok()) {
      std::fprintf(stderr, "%s failed: %s\n", mode, t.status().to_string().c_str());
      return 1;
    }
    table.add_row({mode, "0.92", "3.0", fmt_double(*t, 1)});
  }
  table.print();

  bench::banner("File-channel sensitivity to memory-state compressibility");
  bench::Table sweep({"mem zero frac", "nonzero ratio", "clone time (s)"});
  for (auto [zf, cr] : std::initializer_list<std::pair<double, double>>{
           {0.98, 4.0}, {0.92, 3.0}, {0.75, 2.5}, {0.50, 2.0}, {0.20, 1.5}, {0.0, 1.05}}) {
    auto t = run_mode("file-channel", zf, cr, mlog);
    if (!t.is_ok()) return 1;
    sweep.add_row({fmt_double(zf, 2), fmt_double(cr, 2), fmt_double(*t, 1)});
  }
  rep.add_table("meta_modes", table);
  mlog.attach(rep);
  rep.add_table("file_channel_sweep", sweep);
  rep.write();
  sweep.print();
  std::printf("\nExpectation: the file channel wins big on post-boot (mostly-zero)\n"
              "states and degrades gracefully toward SCP-of-raw-bytes as the\n"
              "image approaches incompressible.\n");
  return 0;
}
