// Micro-benchmarks (google-benchmark) for the hot paths of the GVFS
// implementation itself: XDR codecs, proxy cache indexing, extent store
// operations, synthetic content generation and hashing.
#include <benchmark/benchmark.h>

#include "blob/blob.h"
#include "blob/extent_store.h"
#include "cache/block_cache.h"
#include "common/rng.h"
#include "nfs/nfs_types.h"
#include "sim/kernel.h"
#include "xdr/xdr.h"

namespace gvfs {
namespace {

void BM_XdrEncodeReadArgs(benchmark::State& state) {
  nfs::ReadArgs args;
  args.fh = nfs::Fh{1, 42};
  args.offset = 1_MiB;
  args.count = 32_KiB;
  for (auto _ : state) {
    xdr::XdrEncoder enc;
    args.encode(enc);
    benchmark::DoNotOptimize(enc.size());
  }
}
BENCHMARK(BM_XdrEncodeReadArgs);

void BM_XdrDecodeReadArgs(benchmark::State& state) {
  nfs::ReadArgs args;
  args.fh = nfs::Fh{1, 42};
  args.offset = 1_MiB;
  args.count = 32_KiB;
  xdr::XdrEncoder enc;
  args.encode(enc);
  std::vector<u8> raw = enc.take();
  for (auto _ : state) {
    xdr::XdrDecoder dec(raw);
    auto back = nfs::ReadArgs::decode(dec);
    benchmark::DoNotOptimize(back.is_ok());
  }
}
BENCHMARK(BM_XdrDecodeReadArgs);

void BM_XdrEncodeFattr(benchmark::State& state) {
  nfs::Fattr f;
  f.a.size = 320_MiB;
  for (auto _ : state) {
    xdr::XdrEncoder enc;
    f.encode(enc);
    benchmark::DoNotOptimize(enc.size());
  }
}
BENCHMARK(BM_XdrEncodeFattr);

void BM_CacheLookupHit(benchmark::State& state) {
  sim::SimKernel kernel;
  sim::DiskConfig dcfg;
  dcfg.seek = 0;
  dcfg.seq_overhead = 0;
  dcfg.bytes_per_sec = 1e15;
  sim::DiskModel disk(kernel, "d", dcfg);
  cache::BlockCacheConfig cfg;
  cfg.capacity_bytes = 1_GiB;
  cache::ProxyDiskCache cache(disk, cfg);
  kernel.run_process("bench", [&](sim::Process& p) {
    for (u64 b = 0; b < 1024; ++b) {
      (void)cache.insert(p, cache::BlockId{7, b}, blob::make_zero(32_KiB), false);
    }
    SplitMix64 rng(1);
    for (auto _ : state) {
      auto hit = cache.lookup(p, cache::BlockId{7, rng.next_below(1024)});
      benchmark::DoNotOptimize(hit.has_value());
    }
  });
}
BENCHMARK(BM_CacheLookupHit);

void BM_CacheSetIndexing(benchmark::State& state) {
  sim::SimKernel kernel;
  sim::DiskConfig dcfg;
  dcfg.seek = 0;
  dcfg.seq_overhead = 0;
  dcfg.bytes_per_sec = 1e15;
  sim::DiskModel disk(kernel, "d", dcfg);
  cache::BlockCacheConfig cfg;  // paper geometry: 8 GiB, 512 banks, 16-way
  cache::ProxyDiskCache cache(disk, cfg);
  kernel.run_process("bench", [&](sim::Process& p) {
    SplitMix64 rng(2);
    u64 b = 0;
    for (auto _ : state) {
      (void)cache.insert(p, cache::BlockId{rng.next() % 64, b++ % 262144},
                         blob::make_zero(1), false);
    }
  });
}
BENCHMARK(BM_CacheSetIndexing);

void BM_ExtentStoreWrite(benchmark::State& state) {
  blob::ExtentStore es;
  SplitMix64 rng(3);
  auto data = blob::make_zero(4_KiB);
  for (auto _ : state) {
    es.write_blob(rng.next_below(1_GiB) & ~u64{4095}, data, 0, 4_KiB);
  }
  benchmark::DoNotOptimize(es.extent_count());
}
BENCHMARK(BM_ExtentStoreWrite);

void BM_ExtentStoreReadSlice(benchmark::State& state) {
  blob::ExtentStore es;
  SplitMix64 rng(4);
  auto data = blob::make_zero(4_KiB);
  for (int i = 0; i < 10000; ++i) {
    es.write_blob(rng.next_below(1_GiB) & ~u64{4095}, data, 0, 4_KiB);
  }
  es.truncate(1_GiB);
  for (auto _ : state) {
    auto slice = es.read_slice(rng.next_below(1_GiB - 64_KiB), 64_KiB);
    benchmark::DoNotOptimize(slice->size());
  }
}
BENCHMARK(BM_ExtentStoreReadSlice);

void BM_SyntheticRead32K(benchmark::State& state) {
  auto blob = blob::make_synthetic(5, 1_GiB, 0.92, 3.0);
  std::vector<u8> buf(32_KiB);
  SplitMix64 rng(6);
  for (auto _ : state) {
    blob->read(rng.next_below(1_GiB - 32_KiB), buf);
    benchmark::DoNotOptimize(buf[0]);
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) * 32_KiB);
}
BENCHMARK(BM_SyntheticRead32K);

void BM_ZeroRangeCheck(benchmark::State& state) {
  auto blob = blob::make_synthetic(7, 512_MiB, 0.92, 3.0);
  SplitMix64 rng(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        blob->is_zero_range(rng.next_below(512_MiB - 8_KiB) & ~u64{8191}, 8_KiB));
  }
}
BENCHMARK(BM_ZeroRangeCheck);

void BM_RangeHash1M(benchmark::State& state) {
  auto blob = blob::make_synthetic(9, 64_MiB, 0.5, 2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(blob::range_hash(*blob, 0, 1_MiB));
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) * 1_MiB);
}
BENCHMARK(BM_RangeHash1M);

void BM_SimProcessSwitch(benchmark::State& state) {
  // Cost of one virtual-time block/resume pair — the simulator's unit cost.
  sim::SimKernel kernel;
  kernel.run_process("bench", [&](sim::Process& p) {
    for (auto _ : state) {
      p.delay(1);
    }
  });
}
BENCHMARK(BM_SimProcessSwitch);

}  // namespace
}  // namespace gvfs

BENCHMARK_MAIN();
