// Micro-benchmarks (google-benchmark) for the hot paths of the GVFS
// implementation itself: XDR codecs, proxy cache indexing, extent store
// operations, synthetic content generation and hashing.
//
// Every benchmark pins its iteration count (->Iterations): adaptive timing
// would re-derive the count from each machine's speed, making the
// alloc_count in BENCH_micro.json nondeterministic — and that number is a
// CI gate (tools/check_alloc_budget.sh) precisely because fixed iterations
// make it exactly reproducible.
#include <benchmark/benchmark.h>

#include "alloc_hook.h"
#include "bench_util.h"
#include "blob/blob.h"
#include "blob/extent_store.h"
#include "cache/block_cache.h"
#include "common/rng.h"
#include "nfs/nfs_types.h"
#include "sim/kernel.h"
#include "xdr/xdr.h"

namespace gvfs {
namespace {

// Report allocation churn per iteration as user counters, so the zero-copy
// claims are measured, not asserted.
struct AllocProbe {
  bench::AllocCounters start = bench::alloc_snapshot();
  void finish(benchmark::State& state) const {
    bench::AllocCounters now = bench::alloc_snapshot();
    auto iters = static_cast<double>(std::max<i64>(1, state.iterations()));
    state.counters["allocs/iter"] =
        static_cast<double>(now.count - start.count) / iters;
    state.counters["alloc_bytes/iter"] =
        static_cast<double>(now.bytes - start.bytes) / iters;
  }
};

void BM_XdrEncodeReadArgs(benchmark::State& state) {
  nfs::ReadArgs args;
  args.fh = nfs::Fh{1, 42};
  args.offset = 1_MiB;
  args.count = 32_KiB;
  for (auto _ : state) {
    xdr::XdrEncoder enc;
    args.encode(enc);
    benchmark::DoNotOptimize(enc.size());
  }
}
BENCHMARK(BM_XdrEncodeReadArgs)->Iterations(1000000);

void BM_XdrDecodeReadArgs(benchmark::State& state) {
  nfs::ReadArgs args;
  args.fh = nfs::Fh{1, 42};
  args.offset = 1_MiB;
  args.count = 32_KiB;
  xdr::XdrEncoder enc;
  args.encode(enc);
  std::vector<u8> raw = enc.take();
  for (auto _ : state) {
    xdr::XdrDecoder dec(raw);
    auto back = nfs::ReadArgs::decode(dec);
    benchmark::DoNotOptimize(back.is_ok());
  }
}
BENCHMARK(BM_XdrDecodeReadArgs)->Iterations(2000000);

// The 32 KiB READ decode path: payload must cross the codec without being
// copied — the decoder hands out a ViewBlob sharing the receive buffer.
// alloc_bytes/iter stays in the tens of bytes (shared_ptr control blocks),
// not 32 KiB.
void BM_XdrDecodeReadRes32K(benchmark::State& state) {
  nfs::ReadRes res;
  res.status = nfs::NfsStat::kOk;
  res.count = 32_KiB;
  res.eof = false;
  std::vector<u8> payload(32_KiB, 0xab);
  res.data = blob::make_bytes(std::move(payload));
  xdr::XdrEncoder enc;
  res.encode(enc);
  auto backing = std::make_shared<const std::vector<u8>>(enc.take());
  AllocProbe probe;
  for (auto _ : state) {
    xdr::XdrDecoder dec(std::span<const u8>(*backing), backing);
    auto back = nfs::ReadRes::decode(dec);
    benchmark::DoNotOptimize(back.is_ok());
  }
  probe.finish(state);
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) * 32_KiB);
}
BENCHMARK(BM_XdrDecodeReadRes32K)->Iterations(500000);

// Scatter-gather encode of a 32 KiB WRITE: the payload blob is borrowed by
// reference; no flatten happens unless someone asks for the wire image.
void BM_XdrEncodeWriteArgs32K(benchmark::State& state) {
  nfs::WriteArgs args;
  args.fh = nfs::Fh{1, 42};
  args.offset = 1_MiB;
  args.count = 32_KiB;
  std::vector<u8> payload(32_KiB, 0xcd);
  args.data = blob::make_bytes(std::move(payload));
  AllocProbe probe;
  for (auto _ : state) {
    xdr::XdrEncoder enc;
    args.encode(enc);
    benchmark::DoNotOptimize(enc.size());
  }
  probe.finish(state);
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) * 32_KiB);
}
BENCHMARK(BM_XdrEncodeWriteArgs32K)->Iterations(200000);

void BM_XdrEncodeFattr(benchmark::State& state) {
  nfs::Fattr f;
  f.a.size = 320_MiB;
  for (auto _ : state) {
    xdr::XdrEncoder enc;
    f.encode(enc);
    benchmark::DoNotOptimize(enc.size());
  }
}
BENCHMARK(BM_XdrEncodeFattr)->Iterations(500000);

void BM_CacheLookupHit(benchmark::State& state) {
  sim::SimKernel kernel;
  sim::DiskConfig dcfg;
  dcfg.seek = 0;
  dcfg.seq_overhead = 0;
  dcfg.bytes_per_sec = 1e15;
  sim::DiskModel disk(kernel, "d", dcfg);
  cache::BlockCacheConfig cfg;
  cfg.capacity_bytes = 1_GiB;
  cache::ProxyDiskCache cache(disk, cfg);
  kernel.run_process("bench", [&](sim::Process& p) {
    for (u64 b = 0; b < 1024; ++b) {
      (void)cache.insert(p, cache::BlockId{7, b}, blob::make_zero(32_KiB), false);
    }
    SplitMix64 rng(1);
    for (auto _ : state) {
      auto hit = cache.lookup(p, cache::BlockId{7, rng.next_below(1024)});
      benchmark::DoNotOptimize(hit.has_value());
    }
  });
  bench::require_no_failed_processes(kernel, "BM_CacheLookupHit");
}
BENCHMARK(BM_CacheLookupHit)->Iterations(500000);

void BM_CacheSetIndexing(benchmark::State& state) {
  sim::SimKernel kernel;
  sim::DiskConfig dcfg;
  dcfg.seek = 0;
  dcfg.seq_overhead = 0;
  dcfg.bytes_per_sec = 1e15;
  sim::DiskModel disk(kernel, "d", dcfg);
  cache::BlockCacheConfig cfg;  // paper geometry: 8 GiB, 512 banks, 16-way
  cache::ProxyDiskCache cache(disk, cfg);
  kernel.run_process("bench", [&](sim::Process& p) {
    SplitMix64 rng(2);
    u64 b = 0;
    for (auto _ : state) {
      (void)cache.insert(p, cache::BlockId{rng.next() % 64, b++ % 262144},
                         blob::make_zero(1), false);
    }
  });
  bench::require_no_failed_processes(kernel, "BM_CacheSetIndexing");
}
BENCHMARK(BM_CacheSetIndexing)->Iterations(200000);

// invalidate_file at the paper's 8 GiB / 262,144-frame geometry: cost must
// scale with the number of file-resident blocks (the Arg), not capacity.
void BM_CacheInvalidateFile(benchmark::State& state) {
  sim::SimKernel kernel;
  sim::DiskConfig dcfg;
  dcfg.seek = 0;
  dcfg.seq_overhead = 0;
  dcfg.bytes_per_sec = 1e15;
  sim::DiskModel disk(kernel, "d", dcfg);
  cache::BlockCacheConfig cfg;  // paper geometry: 8 GiB, 512 banks, 16-way
  cache::ProxyDiskCache cache(disk, cfg);
  const u64 resident = static_cast<u64>(state.range(0));
  kernel.run_process("bench", [&](sim::Process& p) {
    auto block = blob::zero_ref(32_KiB);
    for (auto _ : state) {
      state.PauseTiming();
      for (u64 b = 0; b < resident; ++b) {
        (void)cache.insert(p, cache::BlockId{99, b}, block, false);
      }
      state.ResumeTiming();
      cache.invalidate_file(99);
    }
  });
  bench::require_no_failed_processes(kernel, "BM_CacheInvalidateFile");
  state.counters["resident"] = static_cast<double>(resident);
}
BENCHMARK(BM_CacheInvalidateFile)
    ->Arg(16)
    ->Arg(256)
    ->Arg(4096)
    ->Iterations(2000);

void BM_ExtentStoreWrite(benchmark::State& state) {
  blob::ExtentStore es;
  SplitMix64 rng(3);
  auto data = blob::make_zero(4_KiB);
  for (auto _ : state) {
    es.write_blob(rng.next_below(1_GiB) & ~u64{4095}, data, 0, 4_KiB);
  }
  benchmark::DoNotOptimize(es.extent_count());
}
BENCHMARK(BM_ExtentStoreWrite)->Iterations(200000);

void BM_ExtentStoreReadSlice(benchmark::State& state) {
  blob::ExtentStore es;
  SplitMix64 rng(4);
  auto data = blob::make_zero(4_KiB);
  for (int i = 0; i < 10000; ++i) {
    es.write_blob(rng.next_below(1_GiB) & ~u64{4095}, data, 0, 4_KiB);
  }
  es.truncate(1_GiB);
  for (auto _ : state) {
    auto slice = es.read_slice(rng.next_below(1_GiB - 64_KiB), 64_KiB);
    benchmark::DoNotOptimize(slice->size());
  }
}
BENCHMARK(BM_ExtentStoreReadSlice)->Iterations(500000);

void BM_SyntheticRead32K(benchmark::State& state) {
  auto blob = blob::make_synthetic(5, 1_GiB, 0.92, 3.0);
  std::vector<u8> buf(32_KiB);
  SplitMix64 rng(6);
  for (auto _ : state) {
    blob->read(rng.next_below(1_GiB - 32_KiB), buf);
    benchmark::DoNotOptimize(buf[0]);
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) * 32_KiB);
}
BENCHMARK(BM_SyntheticRead32K)->Iterations(100000);

void BM_ZeroRangeCheck(benchmark::State& state) {
  auto blob = blob::make_synthetic(7, 512_MiB, 0.92, 3.0);
  SplitMix64 rng(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        blob->is_zero_range(rng.next_below(512_MiB - 8_KiB) & ~u64{8191}, 8_KiB));
  }
}
BENCHMARK(BM_ZeroRangeCheck)->Iterations(2000000);

void BM_RangeHash1M(benchmark::State& state) {
  auto blob = blob::make_synthetic(9, 64_MiB, 0.5, 2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(blob::range_hash(*blob, 0, 1_MiB));
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) * 1_MiB);
}
BENCHMARK(BM_RangeHash1M)->Iterations(200);

void BM_SimProcessSwitch(benchmark::State& state) {
  // Cost of one virtual-time block/resume pair — the simulator's unit cost.
  sim::SimKernel kernel;
  kernel.run_process("bench", [&](sim::Process& p) {
    for (auto _ : state) {
      p.delay(1);
    }
  });
  bench::require_no_failed_processes(kernel, "BM_SimProcessSwitch");
}
BENCHMARK(BM_SimProcessSwitch)->Iterations(1000000);

}  // namespace
}  // namespace gvfs

int main(int argc, char** argv) {
  gvfs::bench::BenchReport rep("micro");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  rep.write();
  return 0;
}
