// Origin image cluster: N sharded, R-replicated origin NfsServers behind the
// per-node ShardRouter (DESIGN.md §5.7).
//
// Two experiments:
//   A. Read load spread — K compute nodes cold-read a shared catalog of small
//      files through clusters of N = 1, 2, 4 shards (R = 1). The
//      file-handle-hash shard map must spread per-origin READ load to within
//      ~1/N of the total (gated at 1.45x the ideal share), while the total
//      READ count stays within 2% of the single-origin run.
//   B. Crash failover — a 4-shard / 2-replica cluster takes a replica crash
//      mid-write-session (async write-back, degraded proxies, soft-mount
//      retry budget). The router detects the dead replica via retransmission
//      exhaustion, acks writes from the survivor, journals everything the
//      dead origin missed, and replays the journal on reintegration: after
//      quiesce, every acked byte must be present on EVERY replica of its
//      shard — zero lost acked writes — with the measured outage bounded.
//      Swept over two crash victims so both shard neighbourhoods fail over.
#include "bench_util.h"
#include "blob/blob.h"
#include "common/rng.h"

using namespace gvfs;

namespace {

// ---- A: read load spread ----------------------------------------------------

constexpr int kReaders = 4;
constexpr int kCatalogFiles = 64;
constexpr u64 kCatalogFileBytes = 128_KiB;
constexpr double kSpreadSlack = 1.45;  // max per-origin share vs ideal 1/N

struct SpreadRun {
  std::vector<u64> per_origin;  // READ calls served by each origin
  u64 total_reads = 0;
  double max_over_ideal = 0;  // max per-origin / (total / N)
  double elapsed_s = 0;
};

Result<SpreadRun> run_spread(u32 shards, bench::MetricsLog& mlog) {
  core::TestbedOptions opt;
  opt.scenario = core::Scenario::kWanCached;
  opt.generate_image_meta = false;  // block-RPC path only
  opt.compute_nodes = kReaders;
  opt.origin_cluster = true;
  opt.origin_shards = shards;
  opt.origin_replicas = 1;
  core::Testbed bed(opt);

  for (int f = 0; f < kCatalogFiles; ++f) {
    GVFS_RETURN_IF_ERROR(bed.put_image_file(
        "/cat" + std::to_string(f),
        blob::make_synthetic(100 + static_cast<u64>(f), kCatalogFileBytes, 0.0, 1.0)));
  }

  Status st = Status::ok();
  SimTime start = bed.kernel().now();
  SimTime end = start;
  for (int c = 0; c < kReaders; ++c) {
    bed.kernel().spawn("reader" + std::to_string(c), [&, c](sim::Process& p) {
      if (Status m = bed.mount(p, c); !m.is_ok()) {
        st = m;
        return;
      }
      for (int f = 0; f < kCatalogFiles; ++f) {
        auto data = bed.image_session(c).read_all(p, "/cat" + std::to_string(f));
        if (!data.is_ok()) {
          st = data.status();
          return;
        }
      }
      end = std::max(end, p.now());
    });
  }
  bed.kernel().run();
  if (!st.is_ok()) return st;
  bench::require_no_failed_processes(bed.kernel(), "origin_cluster spread");

  SpreadRun out;
  out.elapsed_s = to_seconds(end - start);
  u64 max_reads = 0;
  for (u32 j = 0; j < bed.origin_count(); ++j) {
    u64 reads = bed.origin_server(static_cast<int>(j))->calls(nfs::Proc::kRead);
    out.per_origin.push_back(reads);
    out.total_reads += reads;
    max_reads = std::max(max_reads, reads);
  }
  double ideal = static_cast<double>(out.total_reads) / shards;
  out.max_over_ideal = ideal > 0 ? static_cast<double>(max_reads) / ideal : 0;
  mlog.capture("spread_n" + std::to_string(shards), bed);
  return out;
}

// ---- B: crash failover ------------------------------------------------------

constexpr u32 kClusterShards = 4;
constexpr u32 kClusterReplicas = 2;
constexpr int kWriters = 2;
constexpr int kMinFilesPerWriter = 3;
constexpr int kMaxClusterFiles = 16;
constexpr u64 kWriteFileBytes = 256_KiB;
constexpr u64 kWriteBlock = 32_KiB;  // block-aligned: no fetch-on-partial-write
constexpr int kOpsPerWriter = 36;
constexpr int kFlushEvery = 6;  // deterministic cadence: ~2 flushes land
                                // inside the 12 s crash window
constexpr double kMaxOutageMs = 45000.0;  // crash window is 12 s; lazy probes
                                          // must reintegrate well before quiesce

struct WriteOp {
  SimDuration gap = 0;
  int file = 0;
  u64 offset = 0;
  u64 fill_seed = 0;
  bool flush = false;
};

struct FailoverRun {
  u64 acked_writes = 0;
  u64 lost_writes = 0;  // acked writes missing from any replica — must be 0
  u64 failovers = 0;
  u64 resyncs = 0;
  u64 journaled = 0;
  u64 replayed = 0;
  double outage_ms = 0;
  double elapsed_s = 0;
};

Result<FailoverRun> run_failover(int victim, bench::MetricsLog& mlog) {
  core::TestbedOptions opt;
  opt.scenario = core::Scenario::kWanCached;
  opt.generate_image_meta = false;
  opt.compute_nodes = kWriters;
  opt.origin_cluster = true;
  opt.origin_shards = kClusterShards;
  opt.origin_replicas = kClusterReplicas;
  opt.write_policy = cache::WritePolicy::kWriteBack;
  opt.enable_async_writeback = true;
  opt.degraded_proxy = true;
  opt.enable_fault_injection = true;
  opt.fault.crashes.push_back(
      sim::FaultWindow{20 * kSecond, 32 * kSecond, victim});
  opt.retry.timeout = 250 * kMillisecond;
  opt.retry.max_retransmits = 2;  // soft mount: kTimeout reaches the router
  core::Testbed bed(opt);

  // Initial images plus the locally-maintained expected bytes per file.
  // Files are dealt round-robin to the writers and creation continues until
  // every shard holds at least one file — with R = 2 chained declustering
  // that guarantees every origin (any crash victim) sees WRITE traffic.
  std::vector<std::vector<std::string>> paths(kWriters);   // session-relative
  std::vector<std::vector<std::vector<u8>>> expect(kWriters);
  {
    std::vector<bool> shard_covered(kClusterShards, false);
    u32 covered = 0;
    for (int f = 0; f < kMaxClusterFiles; ++f) {
      int c = f % kWriters;
      std::string rel = "/wf" + std::to_string(f);
      blob::BlobRef init = blob::make_synthetic(900 + static_cast<u64>(f),
                                                kWriteFileBytes, 0.0, 1.0);
      GVFS_RETURN_IF_ERROR(bed.put_image_file(rel, init));
      paths[static_cast<std::size_t>(c)].push_back(rel);
      auto& bytes = expect[static_cast<std::size_t>(c)].emplace_back();
      bytes.resize(kWriteFileBytes);
      init->read(0, bytes);
      auto id = bed.origin_fs(0).resolve(bed.image_dir() + rel);
      if (!id.is_ok()) return id.status();
      u32 shard = bed.shard_router(0)->shard_of(bed.origin_server(0)->fh_of(*id));
      if (!shard_covered[shard]) {
        shard_covered[shard] = true;
        ++covered;
      }
      if (covered == kClusterShards &&
          paths[kWriters - 1].size() >= kMinFilesPerWriter) {
        break;
      }
    }
    if (covered != kClusterShards) {
      return err(ErrCode::kInternal, "file set does not cover every shard");
    }
  }

  // Pre-generate the op streams — identical for every crash victim. Writes
  // cycle round-robin over the writer's files with a fixed flush cadence, so
  // every shard takes quorum WRITEs inside the 20-32 s crash window; ops span
  // roughly [0, 43] s.
  std::vector<std::vector<WriteOp>> ops(kWriters);
  SplitMix64 rng(0xc1a5);
  for (int c = 0; c < kWriters; ++c) {
    const auto n_files = paths[static_cast<std::size_t>(c)].size();
    for (int i = 0; i < kOpsPerWriter; ++i) {
      WriteOp op;
      op.gap = (800 + rng.next_below(800)) * kMillisecond;
      op.file = static_cast<int>(static_cast<std::size_t>(i) % n_files);
      op.offset = rng.next_below(kWriteFileBytes / kWriteBlock) * kWriteBlock;
      op.fill_seed = rng.next();
      op.flush = i % kFlushEvery == kFlushEvery - 1;
      ops[static_cast<std::size_t>(c)].push_back(op);
    }
  }

  Status st = Status::ok();
  FailoverRun out;
  SimTime start = bed.kernel().now();
  SimTime end = start;
  for (int c = 0; c < kWriters; ++c) {
    bed.kernel().spawn("writer" + std::to_string(c), [&, c](sim::Process& p) {
      if (Status m = bed.mount(p, c); !m.is_ok()) {
        st = m;
        return;
      }
      auto& session = bed.image_session(c);
      // Learn names/attrs before the crash window so degraded mode can serve.
      for (const std::string& path : paths[static_cast<std::size_t>(c)]) {
        if (auto a = session.stat(p, path); !a.is_ok()) {
          st = a.status();
          return;
        }
      }
      for (const WriteOp& op : ops[static_cast<std::size_t>(c)]) {
        p.delay(op.gap);
        if (op.flush) {
          if (Status fl = session.flush(p); !fl.is_ok()) {
            st = fl;
            return;
          }
          if (Status wb = bed.signal_write_back(p, c); !wb.is_ok()) {
            st = wb;
            return;
          }
          continue;
        }
        const std::string& path =
            paths[static_cast<std::size_t>(c)][static_cast<std::size_t>(op.file)];
        std::vector<u8> data(kWriteBlock);
        SplitMix64 fill(op.fill_seed);
        for (auto& b : data) b = static_cast<u8>(fill.next());
        if (Status w = session.write(p, path, op.offset, blob::make_bytes(data));
            !w.is_ok()) {
          st = w;
          return;
        }
        auto& bytes =
            expect[static_cast<std::size_t>(c)][static_cast<std::size_t>(op.file)];
        std::copy(data.begin(), data.end(),
                  bytes.begin() + static_cast<long>(op.offset));
        ++out.acked_writes;
      }
      // Quiesce: past the crash window, replay degraded queues, drain the
      // flusher, and force the router to reintegrate + replay journals.
      p.delay_until(60 * kSecond);
      if (Status r = bed.client_proxy(c)->signal_reconnect(p); !r.is_ok()) {
        st = r;
        return;
      }
      if (Status fl = session.flush(p); !fl.is_ok()) {
        st = fl;
        return;
      }
      if (Status wb = bed.signal_write_back(p, c); !wb.is_ok()) {
        st = wb;
        return;
      }
      bed.shard_router(c)->resync(p);
      end = std::max(end, p.now());
    });
  }
  bed.kernel().run();
  if (!st.is_ok()) return st;
  bench::require_no_failed_processes(bed.kernel(), "origin_cluster failover");
  out.elapsed_s = to_seconds(end - start);

  for (int c = 0; c < kWriters; ++c) {
    if (bed.client_proxy(c)->pending_writebacks() != 0 ||
        bed.client_proxy(c)->pending_flush_blocks() != 0) {
      return err(ErrCode::kInternal, "write-back queue did not drain");
    }
    const proxy::ShardRouter* router = bed.shard_router(c);
    out.failovers += router->failovers();
    out.resyncs += router->resyncs();
    out.journaled += router->journaled_ops();
    out.replayed += router->replayed_ops();
    out.outage_ms = std::max(out.outage_ms, router->last_outage_ms());
    for (u32 j = 0; j < bed.origin_count(); ++j) {
      if (!router->origin_live(j) || router->journal_size(j) != 0) {
        return err(ErrCode::kInternal, "origin not reintegrated after resync");
      }
    }
  }

  // Zero-lost-acked-writes check: every file's bytes must match the expected
  // content on EVERY replica of its shard.
  const proxy::ShardRouter* router = bed.shard_router(0);
  for (int c = 0; c < kWriters; ++c) {
    for (std::size_t f = 0; f < paths[static_cast<std::size_t>(c)].size(); ++f) {
      std::string abs = bed.image_dir() + paths[static_cast<std::size_t>(c)][f];
      auto id = bed.origin_fs(0).resolve(abs);
      if (!id.is_ok()) return id.status();
      u32 shard = router->shard_of(bed.origin_server(0)->fh_of(*id));
      const auto& want = expect[static_cast<std::size_t>(c)][f];
      for (u32 j : router->replicas_of(shard)) {
        auto got = bed.origin_fs(static_cast<int>(j)).get_file(abs);
        if (!got.is_ok()) return got.status();
        std::vector<u8> bytes((*got)->size());
        (*got)->read(0, bytes);
        if (bytes != want) ++out.lost_writes;
      }
    }
  }
  mlog.capture("failover_victim" + std::to_string(victim), bed);
  return out;
}

std::string joined_counts(const std::vector<u64>& v) {
  std::string out;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += " / ";
    out += std::to_string(v[i]);
  }
  return out;
}

}  // namespace

int main() {
  bench::BenchReport rep("origin_cluster");
  bench::MetricsLog mlog;

  // ---- A: read load spread --------------------------------------------------
  bench::banner("Origin cluster: per-origin READ load, 4 nodes x 64-file catalog");
  bench::Table spread({"origins (N)", "per-origin READs", "total", "max/ideal",
                       "elapsed (s)", "spread"});
  const u32 shard_counts[] = {1, 2, 4};
  u64 baseline_reads = 0;
  bool spread_ok = true;
  for (u32 n : shard_counts) {
    auto r = run_spread(n, mlog);
    if (!r.is_ok()) {
      std::fprintf(stderr, "spread run failed: %s\n", r.status().to_string().c_str());
      return 1;
    }
    if (n == 1) baseline_reads = r->total_reads;
    bool balanced = r->max_over_ideal <= kSpreadSlack;
    double vs_single = baseline_reads > 0
                           ? static_cast<double>(r->total_reads) /
                                 static_cast<double>(baseline_reads)
                           : 0;
    bool total_ok = vs_single >= 0.98 && vs_single <= 1.02;
    spread_ok = spread_ok && balanced && total_ok;
    spread.add_row({std::to_string(n), joined_counts(r->per_origin),
                    std::to_string(r->total_reads), fmt_double(r->max_over_ideal, 2),
                    fmt_double(r->elapsed_s, 1),
                    balanced && total_ok ? "ok" : "IMBALANCED"});
    rep.add_scalar("spread_n" + std::to_string(n) + "_max_over_ideal",
                   r->max_over_ideal);
    rep.add_scalar("spread_n" + std::to_string(n) + "_total_reads", r->total_reads);
  }
  spread.print();
  if (!spread_ok) {
    std::fprintf(stderr, "read load spread gate failed\n");
    return 1;
  }

  // ---- B: crash failover ----------------------------------------------------
  bench::banner("Replica crash at 20-32 s: failover, journal resync, verify");
  bench::Table fo({"crash victim", "acked writes", "lost", "failovers", "resyncs",
                   "journaled", "replayed", "outage (s)", "elapsed (s)"});
  bool failover_ok = true;
  for (int victim : {1, 2}) {
    auto r = run_failover(victim, mlog);
    if (!r.is_ok()) {
      std::fprintf(stderr, "failover run failed: %s\n",
                   r.status().to_string().c_str());
      return 1;
    }
    bool gates = r->lost_writes == 0 && r->failovers >= 1 && r->resyncs >= 1 &&
                 r->outage_ms > 0 && r->outage_ms <= kMaxOutageMs;
    failover_ok = failover_ok && gates;
    fo.add_row({"origin " + std::to_string(victim), std::to_string(r->acked_writes),
                std::to_string(r->lost_writes), std::to_string(r->failovers),
                std::to_string(r->resyncs), std::to_string(r->journaled),
                std::to_string(r->replayed), fmt_double(r->outage_ms / 1000.0, 3),
                fmt_double(r->elapsed_s, 1)});
    rep.add_scalar("failover_v" + std::to_string(victim) + "_acked",
                   r->acked_writes);
    rep.add_scalar("failover_v" + std::to_string(victim) + "_lost", r->lost_writes);
    rep.add_scalar("failover_v" + std::to_string(victim) + "_outage_ms",
                   r->outage_ms);
    rep.add_scalar("failover_v" + std::to_string(victim) + "_replayed",
                   r->replayed);
  }
  fo.print();
  std::printf("\nzero lost acked writes   : %s\n",
              failover_ok ? "verified on every replica" : "FAILED");
  if (!failover_ok) {
    std::fprintf(stderr, "failover gate failed\n");
    return 1;
  }

  rep.add_table("read_load_spread", spread);
  rep.add_table("crash_failover", fo);
  mlog.attach(rep);
  rep.write();
  return 0;
}
