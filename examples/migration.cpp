// Example: checkpoint/migrate a running Grid VM between two compute servers
// (the paper's §6 future-work direction, built here from GVFS mechanisms:
// write-back suspend, middleware write-back, meta-data refresh, file-channel
// resume on the destination).
#include <cstdio>

#include "gvfs/migration.h"

using namespace gvfs;

int main() {
  core::TestbedOptions opt;
  opt.scenario = core::Scenario::kWanCached;
  opt.compute_nodes = 2;
  core::Testbed bed(opt);

  vm::VmImageSpec spec;
  spec.name = "worker-vm";
  spec.memory_bytes = 320_MiB;
  spec.disk_bytes = u64{1638} * 1_MiB;
  auto image = bed.install_image(spec);
  if (!image.is_ok()) return 1;

  bed.kernel().run_process("scheduler", [&](sim::Process& p) {
    // Bring the VM up on compute server 0.
    if (!bed.mount(p, 0).is_ok()) return;
    vfs::FsSession& src = bed.image_session(0);
    vm::VmMonitor vm0;
    vm0.attach(src, image->cfg(), image->vmss(), src, image->flat_vmdk());
    if (!vm0.resume(p).is_ok()) return;
    std::printf("VM running on node 0 (t=%.1f s)\n", to_seconds(p.now()));
    // It does some work...
    if (!vm0.disk_write(p, 700_MiB, blob::make_synthetic(1, 2_MiB, 0, 2.0)).is_ok()) return;
    p.delay(30 * kSecond);

    // The scheduler decides to move it to node 1 (load balancing).
    auto ram = blob::make_synthetic(0x3141, spec.memory_bytes, 0.80, 3.0);
    auto moved = core::migrate_vm(p, bed, *image, vm0, ram, /*src=*/0, /*dst=*/1);
    if (!moved.is_ok()) {
      std::printf("migration failed: %s\n", moved.status().to_string().c_str());
      return;
    }
    std::printf("migrated to node 1: suspend %.1f s + write-back %.1f s + "
                "meta %.1f s + resume %.1f s = %.1f s downtime\n",
                moved->timing.suspend_s, moved->timing.write_back_s,
                moved->timing.metadata_s, moved->timing.resume_s,
                moved->timing.downtime_s());
    // The VM continues on node 1, virtual disk still on demand.
    auto data = moved->vm->disk_read(p, 700_MiB, 64_KiB);
    std::printf("VM alive on node 1, read %llu bytes from its disk\n",
                static_cast<unsigned long long>((*data)->size()));
  });
  return 0;
}
