// Example: golden-image VM cloning over the WAN (the paper's §3.2.3
// non-persistent scenario). Clones a 320 MB-RAM / 1.6 GB-disk image twice —
// cold, then warm — showing the meta-data file channel, on-demand virtual
// disk access through symlinks, redo-log writes, and cache locality across
// clones of the same golden image.
#include <cstdio>

#include "gvfs/testbed.h"
#include "vm/vm_cloner.h"

using namespace gvfs;

int main() {
  core::TestbedOptions opt;
  opt.scenario = core::Scenario::kWanCached;
  core::Testbed bed(opt);

  // Middleware archives a golden image on the image server and pre-processes
  // its memory state into a meta-data file (zero map + file-channel actions).
  vm::VmImageSpec spec;
  spec.name = "rh73-golden";
  spec.memory_bytes = 320_MiB;
  spec.disk_bytes = u64{1638} * 1_MiB;
  auto image = bed.install_image(spec);
  if (!image.is_ok()) {
    std::printf("install failed: %s\n", image.status().to_string().c_str());
    return 1;
  }

  bed.kernel().run_process("cloner", [&](sim::Process& p) {
    if (!bed.mount(p).is_ok()) return;
    for (int i = 0; i < 2; ++i) {
      vm::CloneConfig cfg;
      cfg.image = *image;
      cfg.clone_dir = "/var/vms/clone" + std::to_string(i);
      cfg.clone_name = "user-vm-" + std::to_string(i);
      auto clone = vm::VmCloner::clone(p, bed.image_session(), bed.local_session(), cfg);
      if (!clone.is_ok()) {
        std::printf("clone failed: %s\n", clone.status().to_string().c_str());
        return;
      }
      std::printf("clone %d (%s caches): %.1f s  "
                  "[cfg %.1f | memory %.1f | links %.2f | configure %.1f | resume %.1f]\n",
                  i, i == 0 ? "cold" : "warm", clone->timing.total_s(),
                  clone->timing.copy_cfg_s, clone->timing.copy_mem_s,
                  clone->timing.links_s, clone->timing.configure_s,
                  clone->timing.resume_s);

      // The clone is alive: guest disk reads hit the golden image on demand
      // through the symlinked mount; writes land in the local redo log.
      auto data = clone->vm->disk_read(p, 512_MiB, 64_KiB);
      if (!clone->vm->disk_write(p, 512_MiB, blob::make_synthetic(1, 64_KiB, 0, 2.0)).is_ok()) return;
      if (!clone->vm->sync(p).is_ok()) return;
      std::printf("  guest I/O ok: read %llu bytes, redo log now %llu bytes\n",
                  static_cast<unsigned long long>((*data)->size()),
                  static_cast<unsigned long long>(clone->vm->redo_log()->log_bytes()));

      // Session boundary: fresh kernel caches; proxy caches stay warm.
      bed.nfs_client()->drop_caches();
    }
  });

  std::printf("file-channel fetches over WAN: %llu (second clone reused the cache)\n",
              static_cast<unsigned long long>(bed.file_cache()->files_cached()));
  return 0;
}
