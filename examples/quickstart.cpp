// Quickstart: bring up a WAN GVFS session — kernel NFS client, client-side
// proxy with a write-back disk cache, SSH tunnel, server-side proxy with
// identity mapping, kernel NFS server — then do cached remote file I/O and a
// middleware-driven write-back.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "blob/blob.h"
#include "gvfs/testbed.h"

using namespace gvfs;

int main() {
  // 1. A WAN+C testbed: one compute server, one image server, a ~40 ms RTT
  //    wide-area path, and the paper's 8 GB / 512-bank / 16-way proxy cache.
  core::TestbedOptions opt;
  opt.scenario = core::Scenario::kWanCached;
  core::Testbed bed(opt);

  // 2. Everything runs inside simulation processes on virtual time.
  bed.kernel().run_process("quickstart", [&](sim::Process& p) {
    // Mount the image server's export through the proxy chain.
    if (Status st = bed.mount(p); !st.is_ok()) {
      std::printf("mount failed: %s\n", st.to_string().c_str());
      return;
    }
    vfs::FsSession& fs = bed.image_session();

    // 3. Write a 4 MiB file. The write-back proxy cache absorbs it at local
    //    disk speed; nothing crosses the WAN yet.
    auto content = blob::make_synthetic(/*seed=*/7, 4_MiB, /*zeros=*/0.3, 2.0);
    SimTime t0 = p.now();
    if (!fs.put(p, "/data/results.bin", content).is_ok()) return;
    if (!fs.flush(p).is_ok()) return;
    std::printf("write 4 MiB (absorbed by proxy cache): %.2f s\n",
                to_seconds(p.now() - t0));

    // 4. Cold read of a remote file: block-by-block over the WAN, filling
    //    the proxy cache.
    if (!bed.image_fs()
             .put_file("/exports/images/dataset.bin",
                       blob::make_synthetic(9, 4_MiB, 0.2, 2.0))
             .is_ok()) {
      return;
    }
    t0 = p.now();
    // Timing-only cold read; content is verified on the warm re-read below.
    (void)fs.read_all(p, "/dataset.bin");
    std::printf("cold read 4 MiB over WAN:              %.2f s\n",
                to_seconds(p.now() - t0));

    // 5. A new computing session (kernel caches cold) re-reads it: the proxy
    //    disk cache answers at local-disk speed.
    bed.nfs_client()->drop_caches();
    t0 = p.now();
    auto back = fs.read_all(p, "/dataset.bin");
    std::printf("warm re-read from proxy disk cache:    %.2f s\n",
                to_seconds(p.now() - t0));
    std::printf("content verified: %s\n",
                blob::content_hash(**back) ==
                        blob::content_hash(*bed.image_fs()
                                                .get_file("/exports/images/dataset.bin")
                                                .value())
                    ? "yes"
                    : "NO");

    // 6. Middleware consistency signal: push dirty cache state to the image
    //    server (the paper's session-based consistency model).
    t0 = p.now();
    if (!bed.signal_write_back(p).is_ok()) return;
    std::printf("middleware write-back signal:          %.2f s\n",
                to_seconds(p.now() - t0));
  });

  std::printf("\nproxy stats: %llu calls, %llu served from block cache, "
              "%llu writes absorbed\n",
              static_cast<unsigned long long>(bed.client_proxy()->calls_received()),
              static_cast<unsigned long long>(
                  bed.client_proxy()->reads_served_from_block_cache()),
              static_cast<unsigned long long>(bed.client_proxy()->writes_absorbed()));
  return 0;
}
