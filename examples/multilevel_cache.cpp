// Example: multi-level proxy cache hierarchy (§3.2.1). A cluster of compute
// servers shares a second-level GVFS proxy on a LAN server; the first clone
// pulls the golden image across the WAN once, after which every other node
// clones at LAN speed (the WAN-S3 configuration).
#include <cstdio>

#include "gvfs/testbed.h"
#include "vm/vm_cloner.h"

using namespace gvfs;

int main() {
  constexpr int kNodes = 3;
  core::TestbedOptions opt;
  opt.scenario = core::Scenario::kWanCached;
  opt.second_level_lan_cache = true;
  opt.compute_nodes = kNodes;
  core::Testbed bed(opt);

  vm::VmImageSpec spec;
  spec.name = "lab-image";
  spec.memory_bytes = 320_MiB;
  spec.disk_bytes = u64{1638} * 1_MiB;
  auto image = bed.install_image(spec);
  if (!image.is_ok()) return 1;

  bed.kernel().run_process("rollout", [&](sim::Process& p) {
    for (int node = 0; node < kNodes; ++node) {
      if (!bed.mount(p, node).is_ok()) return;
      vm::CloneConfig cfg;
      cfg.image = *image;
      cfg.clone_dir = "/var/vms/clone";
      SimTime t0 = p.now();
      auto clone =
          vm::VmCloner::clone(p, bed.image_session(node), bed.local_session(node), cfg);
      if (!clone.is_ok()) {
        std::printf("node %d failed: %s\n", node, clone.status().to_string().c_str());
        return;
      }
      std::printf("node %d clone: %.1f s %s\n", node, to_seconds(p.now() - t0),
                  node == 0 ? "(pulls the image across the WAN into the LAN cache)"
                            : "(served by the LAN second-level proxy)");
    }
  });
  return 0;
}
