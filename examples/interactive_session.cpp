// Example: a persistent Grid VM running an interactive document-processing
// session (the paper's §3.2.3 first scenario + the LaTeX workload of §4.2).
// The user's dedicated VM lives on a WAN image server; GVFS write-back hides
// write latency during the session; suspend + middleware write-back persist
// the new state when the user leaves.
#include <cstdio>

#include "gvfs/experiment.h"
#include "workload/latex.h"

using namespace gvfs;

int main() {
  core::TestbedOptions opt;
  opt.scenario = core::Scenario::kWanCached;
  core::Testbed bed(opt);

  bed.kernel().run_process("session", [&](sim::Process& p) {
    // The user's persistent VM: resumed from its checkpointed state on the
    // image server (memory state arrives via the compressed file channel).
    core::VmSetupOptions vopt;
    vopt.spec.name = "alice-vm";
    vopt.spec.memory_bytes = 512_MiB;
    vopt.spec.disk_bytes = 2_GiB;
    vopt.resume = true;
    SimTime t0 = p.now();
    auto setup = core::prepare_vm(p, bed, vopt);
    if (!setup.is_ok()) {
      std::printf("resume failed: %s\n", setup.status().to_string().c_str());
      return;
    }
    std::printf("VM resumed from WAN image server in %.1f s\n", to_seconds(p.now() - t0));

    // An interactive editing session: 6 edit-compile iterations.
    workload::LatexConfig lcfg;
    lcfg.iterations = 6;
    workload::LatexWorkload latex(lcfg);
    if (!latex.install(*setup->guest).is_ok()) return;
    auto report = latex.run(p, *setup->guest);
    if (!report.is_ok()) return;
    std::printf("LaTeX iterations (s):");
    for (const auto& ph : report->phases) std::printf(" %.1f", ph.seconds);
    std::printf("\n(first is cold; the rest ride the caches)\n");

    // The user leaves: suspend the VM (writes the new memory state through
    // the write-back file cache) and let middleware push everything home.
    t0 = p.now();
    auto new_state = blob::make_synthetic(0xa11ce, vopt.spec.memory_bytes, 0.85, 3.0);
    if (!setup->vm->suspend(p, new_state).is_ok()) return;
    std::printf("suspend (locally buffered): %.1f s\n", to_seconds(p.now() - t0));
    t0 = p.now();
    if (!bed.signal_write_back(p).is_ok()) return;
    std::printf("middleware write-back to image server: %.1f s (user is offline)\n",
                to_seconds(p.now() - t0));
  });
  return 0;
}
