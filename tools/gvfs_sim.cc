// gvfs_sim — command-line driver for the GVFS testbed.
//
// Run any paper scenario with any workload (or a custom I/O trace), sweep
// the proxy-cache and extension knobs, and get a timing/statistics report:
//
//   gvfs_sim --scenario=wan+c --workload=latex
//   gvfs_sim --scenario=wan   --workload=kernel --runs=2
//   gvfs_sim --scenario=wan+c --workload=clone --clones=8
//   gvfs_sim --scenario=wan+c --workload=trace --trace-file=app.trace
//   gvfs_sim --scenario=wan+c --workload=synthetic --prefetch=8 --streams=4
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/flags.h"
#include "gvfs/experiment.h"
#include "gvfs/testbed.h"
#include "vm/vm_cloner.h"
#include "workload/kernel_compile.h"
#include "workload/latex.h"
#include "workload/specseis.h"
#include "workload/synthetic.h"
#include "workload/trace.h"

using namespace gvfs;

namespace {

Result<core::Scenario> parse_scenario(const std::string& s) {
  if (s == "local") return core::Scenario::kLocal;
  if (s == "lan") return core::Scenario::kLan;
  if (s == "wan") return core::Scenario::kWan;
  if (s == "wan+c" || s == "wanc") return core::Scenario::kWanCached;
  if (s == "nfs") return core::Scenario::kPlainNfsWan;
  return err(ErrCode::kInval, "scenario must be local|lan|wan|wan+c|nfs");
}

void print_report(const workload::WorkloadReport& report) {
  std::printf("%-24s %10s\n", "phase", "seconds");
  std::printf("-----------------------------------\n");
  for (const auto& ph : report.phases) {
    std::printf("%-24s %10.2f\n", ph.name.c_str(), ph.seconds);
  }
  std::printf("%-24s %10.2f\n", "TOTAL", report.total_s());
}

void print_stats(core::Testbed& bed) {
  if (auto* proxy = bed.client_proxy()) {
    std::printf("\nclient proxy : %llu calls, %llu forwarded, %llu block-cache hits, "
                "%llu file-cache hits, %llu zero-filtered, %llu writes absorbed, "
                "%llu prefetched\n",
                static_cast<unsigned long long>(proxy->calls_received()),
                static_cast<unsigned long long>(proxy->calls_forwarded()),
                static_cast<unsigned long long>(proxy->reads_served_from_block_cache()),
                static_cast<unsigned long long>(proxy->reads_served_from_file_cache()),
                static_cast<unsigned long long>(proxy->zero_filtered_reads()),
                static_cast<unsigned long long>(proxy->writes_absorbed()),
                static_cast<unsigned long long>(proxy->blocks_prefetched()));
  }
  if (auto* cache = bed.block_cache()) {
    std::printf("block cache  : %llu hits / %llu misses, %llu resident blocks, "
                "%llu dirty, %llu banks\n",
                static_cast<unsigned long long>(cache->hits()),
                static_cast<unsigned long long>(cache->misses()),
                static_cast<unsigned long long>(cache->resident_blocks()),
                static_cast<unsigned long long>(cache->dirty_blocks()),
                static_cast<unsigned long long>(cache->banks_created()));
  }
  if (auto* client = bed.nfs_client()) {
    std::printf("nfs client   : %llu RPCs, %s read / %s written on the wire\n",
                static_cast<unsigned long long>(client->rpcs_sent()),
                fmt_bytes(client->bytes_read_wire()).c_str(),
                fmt_bytes(client->bytes_written_wire()).c_str());
  }
  if (auto* link = bed.wan_up()) {
    std::printf("wan          : %s up / %s down\n",
                fmt_bytes(link->bytes_sent()).c_str(),
                fmt_bytes(bed.wan_down()->bytes_sent()).c_str());
  }
}

struct Options {
  std::string scenario = "wan+c";
  std::string workload = "synthetic";
  std::string trace_file;
  std::string write_policy = "write-back";
  u32 runs = 1;
  u32 clones = 4;
  u32 prefetch = 0;
  u32 streams = 1;
  u64 cache_bytes = 8_GiB;
  u32 cache_assoc = 16;
  u64 cache_block = 32_KiB;
  bool lan_l2 = false;
  bool meta = true;
  u64 vm_memory = 320_MiB;
  u64 vm_disk = u64{1638} * 1_MiB;
  u32 synthetic_ops = 2000;
  u64 synthetic_bytes = 64_MiB;
  double read_fraction = 0.8;
  bool sequential = false;
};

int run_clone(core::Testbed& bed, const Options& o) {
  std::vector<vm::VmImagePaths> images;
  for (u32 i = 0; i < o.clones; ++i) {
    vm::VmImageSpec spec;
    spec.name = "vm" + std::to_string(i);
    spec.seed = 42 + i;
    spec.memory_bytes = o.vm_memory;
    spec.disk_bytes = o.vm_disk;
    auto paths = bed.install_image(spec);
    if (!paths.is_ok()) {
      std::fprintf(stderr, "install: %s\n", paths.status().to_string().c_str());
      return 1;
    }
    images.push_back(*paths);
  }
  Status st = Status::ok();
  bed.kernel().run_process("cloner", [&](sim::Process& p) {
    if (Status m = bed.mount(p); !m.is_ok()) {
      st = m;
      return;
    }
    for (u32 i = 0; i < o.clones; ++i) {
      vm::CloneConfig cfg;
      cfg.image = images[i];
      cfg.clone_dir = "/clones/c" + std::to_string(i);
      SimTime t0 = p.now();
      auto result = vm::VmCloner::clone(p, bed.image_session(), bed.local_session(), cfg);
      if (!result.is_ok()) {
        st = result.status();
        return;
      }
      std::printf("clone %u: %6.1f s  [cfg %.1f | mem %.1f | conf %.1f | resume %.1f]\n",
                  i, to_seconds(p.now() - t0), result->timing.copy_cfg_s,
                  result->timing.copy_mem_s, result->timing.configure_s,
                  result->timing.resume_s);
      if (auto* client = bed.nfs_client()) client->drop_caches();
    }
  });
  if (!st.is_ok()) {
    std::fprintf(stderr, "clone failed: %s\n", st.to_string().c_str());
    return 1;
  }
  print_stats(bed);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  FlagParser flags("gvfs_sim", "drive GVFS paper scenarios and workloads");
  flags.add_string("scenario", &o.scenario, "local|lan|wan|wan+c|nfs");
  flags.add_string("workload", &o.workload,
                   "specseis|latex|kernel|synthetic|trace|clone");
  flags.add_string("trace-file", &o.trace_file, "trace file for --workload=trace");
  flags.add_string("write-policy", &o.write_policy, "write-back|write-through");
  flags.add_u32("runs", &o.runs, "consecutive workload runs (cold then warm)");
  flags.add_u32("clones", &o.clones, "images to clone for --workload=clone");
  flags.add_u32("prefetch", &o.prefetch, "proxy read-ahead depth in blocks");
  flags.add_u32("streams", &o.streams, "parallel streams for the file channel");
  flags.add_u64("cache-bytes", &o.cache_bytes, "proxy disk cache capacity");
  flags.add_u32("cache-assoc", &o.cache_assoc, "proxy cache associativity");
  flags.add_u64("cache-block", &o.cache_block, "proxy cache block size");
  flags.add_bool("lan-l2", &o.lan_l2, "add a LAN second-level cache proxy");
  flags.add_bool("meta", &o.meta, "honour meta-data files");
  flags.add_u64("vm-memory", &o.vm_memory, "VM memory state bytes");
  flags.add_u64("vm-disk", &o.vm_disk, "VM virtual disk bytes");
  flags.add_u32("ops", &o.synthetic_ops, "synthetic workload: operation count");
  flags.add_u64("bytes", &o.synthetic_bytes, "synthetic workload: file size");
  flags.add_double("read-fraction", &o.read_fraction, "synthetic: read share");
  flags.add_bool("sequential", &o.sequential, "synthetic: sequential access");
  if (Status st = flags.parse(argc - 1, argv + 1); !st.is_ok()) {
    std::fprintf(stderr, "%s\n%s", st.to_string().c_str(), flags.usage().c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.usage().c_str());
    return 0;
  }

  auto scenario = parse_scenario(o.scenario);
  if (!scenario.is_ok()) {
    std::fprintf(stderr, "%s\n", scenario.status().to_string().c_str());
    return 2;
  }
  core::TestbedOptions opt;
  opt.scenario = *scenario;
  opt.write_policy = o.write_policy == "write-through"
                         ? cache::WritePolicy::kWriteThrough
                         : cache::WritePolicy::kWriteBack;
  opt.block_cache.capacity_bytes = o.cache_bytes;
  opt.block_cache.associativity = o.cache_assoc;
  opt.block_cache.block_size = o.cache_block;
  opt.prefetch_depth = o.prefetch;
  opt.file_channel_streams = o.streams;
  opt.second_level_lan_cache = o.lan_l2;
  opt.enable_meta = o.meta;
  core::Testbed bed(opt);
  std::printf("scenario %s, workload %s\n", core::scenario_name(*scenario),
              o.workload.c_str());

  if (o.workload == "clone") return run_clone(bed, o);

  // VM-hosted workloads share a runner.
  auto run_hosted = [&](auto& wl) -> int {
    Status st = Status::ok();
    bed.kernel().run_process("driver", [&](sim::Process& p) {
      core::VmSetupOptions vopt;
      vopt.spec.name = "appvm";
      vopt.spec.memory_bytes = std::max<u64>(o.vm_memory, 64_MiB);
      vopt.spec.disk_bytes = std::max<u64>(o.vm_disk, 2_GiB);
      auto setup = core::prepare_vm(p, bed, vopt);
      if (!setup.is_ok()) {
        st = setup.status();
        return;
      }
      if (Status i = wl.install(*setup->guest); !i.is_ok()) {
        st = i;
        return;
      }
      bed.drop_all_caches();
      setup->vm->guest_cache().drop_all();
      for (u32 run = 0; run < o.runs; ++run) {
        auto report = wl.run(p, *setup->guest);
        if (!report.is_ok()) {
          st = report.status();
          return;
        }
        if (o.runs > 1) std::printf("\nrun %u (%s):\n", run + 1, run == 0 ? "cold" : "warm");
        print_report(*report);
      }
    });
    if (!st.is_ok()) {
      std::fprintf(stderr, "workload failed: %s\n", st.to_string().c_str());
      return 1;
    }
    print_stats(bed);
    return 0;
  };

  if (o.workload == "specseis") {
    workload::SpecSeisWorkload wl;
    return run_hosted(wl);
  }
  if (o.workload == "latex") {
    workload::LatexWorkload wl;
    return run_hosted(wl);
  }
  if (o.workload == "kernel") {
    workload::KernelCompileWorkload wl;
    return run_hosted(wl);
  }
  if (o.workload == "synthetic") {
    workload::SyntheticConfig cfg;
    cfg.file_bytes = o.synthetic_bytes;
    cfg.ops = o.synthetic_ops;
    cfg.read_fraction = o.read_fraction;
    cfg.sequential = o.sequential;
    workload::SyntheticWorkload wl(cfg);
    return run_hosted(wl);
  }
  if (o.workload == "trace") {
    if (o.trace_file.empty()) {
      std::fprintf(stderr, "--workload=trace needs --trace-file\n");
      return 2;
    }
    std::ifstream in(o.trace_file);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", o.trace_file.c_str());
      return 2;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    auto ops = workload::TraceWorkload::parse(buf.str());
    if (!ops.is_ok()) {
      std::fprintf(stderr, "%s\n", ops.status().to_string().c_str());
      return 2;
    }
    workload::TraceWorkload wl(*ops);
    return run_hosted(wl);
  }
  std::fprintf(stderr, "unknown workload '%s'\n%s", o.workload.c_str(),
               flags.usage().c_str());
  return 2;
}
