#!/usr/bin/env bash
# Allocation-budget gate for the simulation engine.
#
# bench_micro pins every benchmark to a fixed iteration count, so the
# alloc_count it reports is deterministic: the same binary performs the same
# number of operator-new calls on every run, on every machine. That makes
# allocation churn CI-gateable the way the stdout hashes make the virtual
# timeline gateable: this script runs bench_micro and fails if alloc_count
# exceeds the budget committed in tools/alloc_budget.txt.
#
# The budget carries ~5 % headroom over the measured count so a toolchain
# bump doesn't trip it; a real regression (per-op allocation on a hot sim
# path) blows through it immediately. When a PR legitimately changes
# allocation behaviour, re-measure and update tools/alloc_budget.txt in the
# same commit, explaining the move.
#
# Usage: tools/check_alloc_budget.sh [build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
# Absolute: the bench runs from a scratch directory below.
build_dir="$(cd "$build_dir" 2>/dev/null && pwd || echo "$build_dir")"
budget_file="$repo_root/tools/alloc_budget.txt"

cmake -B "$build_dir" -S "$repo_root" >/dev/null
cmake --build "$build_dir" -j "$(nproc)" --target bench_micro >/dev/null

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

(cd "$work" && "$build_dir/bench/bench_micro" >/dev/null 2>&1)

count="$(sed -n 's/.*"alloc_count": \([0-9]*\).*/\1/p' "$work/BENCH_micro.json")"
budget="$(grep -v '^#' "$budget_file" | head -1 | tr -d '[:space:]')"

if [[ -z "$count" ]]; then
  echo "FAIL: could not read alloc_count from BENCH_micro.json" >&2
  exit 1
fi
if [[ "$count" -gt "$budget" ]]; then
  echo "FAIL: bench_micro alloc_count $count exceeds budget $budget" >&2
  echo "(allocation regression on a hot simulation path, or an intentional" >&2
  echo "change that must update tools/alloc_budget.txt)" >&2
  exit 1
fi
echo "alloc budget check passed: alloc_count $count <= budget $budget"
