#!/usr/bin/env bash
# Sanitizer gate: build the whole tree with AddressSanitizer +
# UndefinedBehaviorSanitizer and run the test suite (including the
# fault-injection tests, label "faults") under them. Any sanitizer report
# aborts the run (halt_on_error / abort-on-UB), so a red exit here means a
# real memory or UB bug, not a flaky test.
#
# Usage: tools/run_checks.sh [build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-asan}"

cmake -B "$build_dir" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DGVFS_SANITIZE=address,undefined
cmake --build "$build_dir" -j "$(nproc)"

# Turn every sanitizer finding into a hard failure: ASan exits non-zero on
# its first report, UBSan aborts instead of printing-and-continuing.
export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1:abort_on_error=0"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"

cd "$build_dir"
echo "== full test suite under ASan/UBSan =="
ctest --output-on-failure -j "$(nproc)"

echo "== fault-injection tests (ctest -L faults) =="
ctest --output-on-failure -L faults -j "$(nproc)"

echo "All checks passed (ASan/UBSan clean)."
