#!/usr/bin/env bash
# Correctness gate: every static and dynamic check this repo supports, in
# cheapest-first order. Any failure aborts the run.
#
#   1. gvfs_lint         repo-specific determinism/style linter over the tree,
#                        including the interprocedural yield-point analysis
#                        (yield-stale-ref / yield-index-loop / yield-held-lock)
#                        and the committed may-yield-model golden diff
#   2. stdout invariance 12 simulated benches run twice each; stdout must be
#                        byte-identical run-to-run and match the committed
#                        tools/golden_stdout.sha256
#   3. ASan/UBSan        full test suite (incl. ctest -L faults) under
#                        AddressSanitizer + UndefinedBehaviorSanitizer
#   4. TSan              full test suite under ThreadSanitizer; the sim is
#                        thread-per-process, so the locking in sim/kernel.cc
#                        gets real concurrency coverage here
#   5. clang-tidy        bugprone-*/performance-*/concurrency-* profile from
#                        .clang-tidy — runs only when clang-tidy is on PATH
#                        (the baked-in container toolchain is gcc-only)
#
# Usage: tools/run_checks.sh [build-dir-prefix]
#   builds land in <prefix>-asan and <prefix>-tsan (default: build-check).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
prefix="${1:-$repo_root/build-check}"
jobs="$(nproc)"

run_suite() {
  local build_dir="$1" sanitizers="$2" label="$3"
  cmake -B "$build_dir" -S "$repo_root" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DGVFS_SANITIZE="$sanitizers"
  cmake --build "$build_dir" -j "$jobs"
  echo "== full test suite under $label =="
  (cd "$build_dir" && ctest --output-on-failure -j "$jobs")
  echo "== fault-injection tests under $label (ctest -L faults) =="
  (cd "$build_dir" && ctest --output-on-failure -L faults -j "$jobs")
}

echo "== gvfs_lint (repo determinism/style linter) =="
lint_build="$prefix-asan"
cmake -B "$lint_build" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DGVFS_SANITIZE=address,undefined
cmake --build "$lint_build" -j "$jobs" --target gvfs_lint
"$lint_build/tools/gvfs_lint" --root "$repo_root"
echo "== yield-model golden (may-yield set vs committed snapshot) =="
"$lint_build/tools/gvfs_lint" --root "$repo_root" \
  --yield-model-golden "$repo_root/tools/lint/yield_model_golden.txt"

# The invariance gate needs an unsanitized build (sanitizers perturb nothing
# simulated, but keep the golden-hash environment identical to CI's).
echo "== stdout invariance (simulated benches, vs golden hashes) =="
"$repo_root/tools/check_stdout_invariance.sh" "$prefix-bench"

# Turn every sanitizer finding into a hard failure: ASan exits non-zero on
# its first report, UBSan aborts instead of printing-and-continuing.
export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1:abort_on_error=0"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
run_suite "$lint_build" "address,undefined" "ASan/UBSan"

# TSan is incompatible with ASan, so it gets its own build tree. Suppress
# nothing: the sim kernel's one-runnable-thread handoff must be data-race
# free as seen by TSan, not just by construction.
export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"
run_suite "$prefix-tsan" "thread" "TSan"

if command -v clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy (.clang-tidy profile) =="
  tidy_build="$prefix-tidy"
  cmake -B "$tidy_build" -S "$repo_root" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
  # Sources only; headers are covered via HeaderFilterRegex.
  find "$repo_root/src" "$repo_root/tools" -name '*.cc' -not -path '*lint_fixtures*' \
    | xargs clang-tidy -p "$tidy_build" --quiet
else
  echo "== clang-tidy not found on PATH; skipping (gcc-only container) =="
fi

echo "All checks passed (lint + stdout invariance + ASan/UBSan + TSan clean)."
