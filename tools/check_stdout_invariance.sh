#!/usr/bin/env bash
# Byte-identical stdout gate for the simulated benches.
#
# Every simulated benchmark prints its results (tables, figure data) to
# stdout and all harness/progress chatter to stderr. Because the simulator
# is deterministic, that stdout must be byte-for-byte reproducible:
#   run-to-run   — two consecutive runs of the same binary must match, and
#   vs. golden   — each run must hash to the value committed in
#                  tools/golden_stdout.sha256.
# A diff here means someone introduced hash-order, wall-clock, or RNG
# nondeterminism into the simulated path (see tools/gvfs_lint for the
# static version of this gate). bench_micro is excluded by design: it
# prints host wall-clock timings.
#
# Usage: tools/check_stdout_invariance.sh [build-dir]
#   Builds the bench binaries if needed, runs each twice, diffs, hashes.
#   --update rewrites tools/golden_stdout.sha256 from the current binaries
#   (use only when a PR intentionally changes simulated results).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
update=0
if [[ "${1:-}" == "--update" ]]; then
  update=1
  shift
fi
build_dir="${1:-$repo_root/build}"
golden="$repo_root/tools/golden_stdout.sha256"

benches=(ablate_cache ablate_cascade ablate_meta ablate_prefetch
         ablate_writeback boot_storm dedup fault_recovery fig3_specseis
         fig4_latex fig5_kernel fig6_cloning origin_cluster
         shared_writeback table1_parallel zerofilter)

cmake -B "$build_dir" -S "$repo_root" >/dev/null
cmake --build "$build_dir" -j "$(nproc)" \
  --target "${benches[@]/#/bench_}" >/dev/null

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

fail=0
new_golden=""
for name in "${benches[@]}"; do
  bin="$build_dir/bench/bench_$name"
  "$bin" >"$work/$name.run1" 2>/dev/null
  "$bin" >"$work/$name.run2" 2>/dev/null
  if ! cmp -s "$work/$name.run1" "$work/$name.run2"; then
    echo "FAIL $name: stdout differs between two runs (nondeterminism)" >&2
    diff "$work/$name.run1" "$work/$name.run2" | head -20 >&2 || true
    fail=1
    continue
  fi
  got="$(sha256sum "$work/$name.run1" | cut -d' ' -f1)"
  new_golden+="$got  $name"$'\n'
  if [[ "$update" == 1 ]]; then
    echo "UPDATE $name $got"
    continue
  fi
  want="$(awk -v n="$name" '$2 == n { print $1 }' "$golden")"
  if [[ -z "$want" ]]; then
    echo "FAIL $name: no golden hash recorded in $golden" >&2
    fail=1
  elif [[ "$got" != "$want" ]]; then
    echo "FAIL $name: stdout hash $got != golden $want" >&2
    fail=1
  else
    echo "OK   $name"
  fi
done

if [[ "$update" == 1 ]]; then
  printf '%s' "$new_golden" >"$golden"
  echo "wrote $golden"
  exit 0
fi

if [[ "$fail" != 0 ]]; then
  echo "stdout invariance check FAILED" >&2
  exit 1
fi
echo "stdout invariance check passed (${#benches[@]} benches, run twice each)."
