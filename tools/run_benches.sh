#!/usr/bin/env bash
# Build the bench suite in Release and run every bench, collecting the
# BENCH_<name>.json reports (wall-clock, allocation counts, simulated
# figures) into a single directory at the repo root.
#
# Usage: tools/run_benches.sh [build-dir] [out-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-release}"
out_dir="${2:-$repo_root/bench-reports}"

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" -j "$(nproc)"

benches=(
  bench_fig3_specseis
  bench_fig4_latex
  bench_fig5_kernel
  bench_fig6_cloning
  bench_table1_parallel
  bench_zerofilter
  bench_ablate_cache
  bench_ablate_cascade
  bench_ablate_meta
  bench_ablate_prefetch
  bench_ablate_writeback
  bench_fault_recovery
  bench_shared_writeback
  bench_boot_storm
  bench_origin_cluster
  bench_dedup
  bench_micro
)

mkdir -p "$out_dir"
run_dir="$(mktemp -d)"
trap 'rm -rf "$run_dir"' EXIT

for b in "${benches[@]}"; do
  echo "=== $b ==="
  # Each bench writes BENCH_<name>.json into its working directory.
  (cd "$run_dir" && "$build_dir/bench/$b" | tee "$out_dir/$b.out")
done

mv "$run_dir"/BENCH_*.json "$out_dir"/
echo
echo "Reports collected in $out_dir:"
ls "$out_dir"/BENCH_*.json
