#include "lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>

#include "lint/analyzer.h"
#include "lint/text.h"
#include "lint/yield_model.h"

namespace gvfs::lint {
namespace fs = std::filesystem;

// ------------------------------------------------------------ text prep --
// Shared with the yield analyzer via lint/text.h.

std::vector<std::string> strip_code(const std::string& content) {
  std::vector<std::string> lines;
  std::string cur;
  enum class S { kCode, kLineComment, kBlockComment, kString, kChar };
  S st = S::kCode;
  for (std::size_t i = 0; i < content.size(); ++i) {
    char c = content[i];
    char next = i + 1 < content.size() ? content[i + 1] : '\0';
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
      if (st == S::kLineComment) st = S::kCode;
      continue;
    }
    switch (st) {
      case S::kCode:
        if (c == '/' && next == '/') {
          st = S::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          st = S::kBlockComment;
          ++i;
        } else if (c == '"') {
          st = S::kString;
          cur += '"';
        } else if (c == '\'') {
          st = S::kChar;
          cur += '\'';
        } else {
          cur += c;
        }
        break;
      case S::kLineComment:
        break;
      case S::kBlockComment:
        if (c == '*' && next == '/') {
          st = S::kCode;
          ++i;
        }
        break;
      case S::kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          st = S::kCode;
          cur += '"';
        }
        break;
      case S::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          st = S::kCode;
          cur += '\'';
        }
        break;
    }
  }
  lines.push_back(cur);
  return lines;
}

std::vector<std::string> split_lines(const std::string& content) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : content) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  lines.push_back(cur);
  return lines;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::string item;
  std::stringstream ss(s);
  while (std::getline(ss, item, ',')) {
    std::size_t b = item.find_first_not_of(" \t");
    std::size_t e = item.find_last_not_of(" \t");
    if (b != std::string::npos) out.push_back(item.substr(b, e - b + 1));
  }
  return out;
}

// --------------------------------------------------------- suppressions --

Suppressions parse_suppressions(const std::vector<std::string>& raw_lines) {
  Suppressions sup;
  static const std::regex kAllow(R"(gvfs-lint:\s*allow\(([^)]*)\))");
  static const std::regex kFileAllow(R"(gvfs-lint:\s*file-allow\(([^)]*)\))");
  for (std::size_t i = 0; i < raw_lines.size(); ++i) {
    const std::string& text = raw_lines[i];
    std::smatch m;
    if (std::regex_search(text, m, kFileAllow)) {
      for (const std::string& r : split_csv(m[1].str())) {
        sup.file_allowed.insert(r);
      }
    } else if (std::regex_search(text, m, kAllow)) {
      int line = static_cast<int>(i) + 1;
      // A comment alone on its line shields the next line instead.
      std::size_t first = text.find_first_not_of(" \t");
      if (first != std::string::npos && text[first] == '/') ++line;
      for (const std::string& r : split_csv(m[1].str())) {
        sup.line_allowed[line].insert(r);
      }
    }
  }
  return sup;
}

bool path_starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

namespace {

// ------------------------------------------------------ path scoping ----

bool starts_with(const std::string& s, const std::string& prefix) {
  return path_starts_with(s, prefix);
}

bool is_header(const std::string& path) {
  return path.size() > 2 && path.rfind(".h") == path.size() - 2;
}

// Host clocks are the sim kernel's business alone.
bool clock_exempt(const std::string& path) { return starts_with(path, "src/sim/"); }

// Bench figure output, example demos and CLI tools legitimately print to
// stdout; libraries and tests never do.
bool print_sanctioned(const std::string& path) {
  return starts_with(path, "bench/") || starts_with(path, "tools/") ||
         starts_with(path, "examples/");
}

// Unordered iteration can feed BenchReport / simulated stdout from any
// library, bench, or CLI code path; tests only feed gtest.
bool unordered_scoped(const std::string& path) {
  return starts_with(path, "src/") || starts_with(path, "bench/") ||
         starts_with(path, "tools/");
}

// Counter members belong to library components; benches/tests/tools keep
// local tallies freely. The registry's own instrument storage is exempt.
bool counter_scoped(const std::string& path) {
  return starts_with(path, "src/") && path != "src/common/metrics.h";
}

// ------------------------------------------------------ token rules -----

struct TokenRule {
  const char* rule;
  std::regex pattern;
  const char* message;
  // Cheap substring gates: the regex only runs on lines containing one of
  // these. std::regex costs microseconds per line; a find() costs nanoseconds
  // — this is what keeps the whole-tree walk inside its wall-clock budget.
  std::vector<const char*> any_of;

  [[nodiscard]] bool gated_out(const std::string& line) const {
    if (any_of.empty()) return false;
    for (const char* s : any_of) {
      if (line.find(s) != std::string::npos) return false;
    }
    return true;
  }
};

const std::vector<TokenRule>& rng_rules() {
  static const std::vector<TokenRule> kRules = [] {
    std::vector<TokenRule> v;
    v.push_back({"determinism-rng", std::regex(R"(\brandom_device\b)"),
                 "host entropy source; use a seeded SplitMix64 (common/rng.h)",
                 {"random_device"}});
    v.push_back({"determinism-rng", std::regex(R"((^|[^:\w.])s?rand\s*\()"),
                 "C PRNG breaks bit-identical replays; use SplitMix64",
                 {"rand"}});
    v.push_back({"determinism-rng", std::regex(R"(\b[dlm]rand48\s*\()"),
                 "C PRNG breaks bit-identical replays; use SplitMix64",
                 {"rand48"}});
    v.push_back({"determinism-rng", std::regex(R"((^|[^:\w.])random\s*\(\s*\))"),
                 "C PRNG breaks bit-identical replays; use SplitMix64",
                 {"random"}});
    return v;
  }();
  return kRules;
}

const std::vector<TokenRule>& clock_rules() {
  static const std::vector<TokenRule> kRules = [] {
    std::vector<TokenRule> v;
    v.push_back({"determinism-clock",
                 std::regex(R"(\b(system_clock|steady_clock|high_resolution_clock)\b)"),
                 "host clock outside src/sim/; simulated code observes virtual time only",
                 {"_clock"}});
    v.push_back({"determinism-clock",
                 std::regex(R"(\b(gettimeofday|clock_gettime|timespec_get)\s*\()"),
                 "host clock outside src/sim/; simulated code observes virtual time only",
                 {"gettimeofday", "clock_gettime", "timespec_get"}});
    v.push_back({"determinism-clock",
                 std::regex(R"((^|[^:\w.>])(time|clock)\s*\(\s*(NULL|nullptr|0)?\s*\))"),
                 "host clock outside src/sim/; simulated code observes virtual time only",
                 {"time", "clock"}});
    return v;
  }();
  return kRules;
}

// Raw integer members with counter-style names (`u64 hits_`) bypass the
// metrics registry: they cannot be snapshotted into BENCH_*.json and drift
// back into the scattered ad-hoc stats the registry replaced. Components
// declare metrics::Counter/Gauge/Histogram and register them instead. The
// registry's own storage (src/common/metrics.h) is exempt by path.
const std::vector<TokenRule>& counter_rules() {
  static const std::vector<TokenRule> kRules = [] {
    std::vector<TokenRule> v;
    v.push_back(
        {"raw-counter",
         std::regex(
             R"(\b(u32|u64|i32|i64|std::size_t|size_t|unsigned)\s+\w*)"
             R"((hits|misses|evictions|retransmits|timeouts|collisions)"
             R"(|inserts|writebacks|transfers|fetches|uploads|absorbed)"
             R"(|prefetched|filtered|replayed)_\s*[={;])"),
         "raw member counter outside the metrics registry; declare a "
         "metrics::Counter/Gauge/Histogram and register_metrics() it",
         {"hits_", "misses_", "evictions_", "retransmits_", "timeouts_",
          "collisions_", "inserts_", "writebacks_", "transfers_", "fetches_",
          "uploads_", "absorbed_", "prefetched_", "filtered_", "replayed_"}});
    return v;
  }();
  return kRules;
}

// Topology code must build origin NfsServers through the Testbed cluster
// factory (Testbed::make_origin_server_): it is the single site that applies
// the shared server config and per-origin crash/restart wiring. A direct
// construction in src/gvfs/ silently skips both. The factory itself carries
// a `// gvfs-lint: allow(cluster-factory)` annotation.
const std::vector<TokenRule>& cluster_factory_rules() {
  static const std::vector<TokenRule> kRules = [] {
    std::vector<TokenRule> v;
    v.push_back(
        {"cluster-factory",
         std::regex(R"(\b(make_unique\s*<\s*(nfs::)?NfsServer\b|new\s+(nfs::)?NfsServer\b))"),
         "direct NfsServer construction in topology code; route through the "
         "Testbed cluster factory (make_origin_server_) so server config and "
         "restart wiring stay uniform",
         {"NfsServer"}});
    return v;
  }();
  return kRules;
}

bool cluster_factory_scoped(const std::string& path) {
  return starts_with(path, "src/gvfs/");
}

// The block cache's frame payloads participate in the content-dedup store:
// each assignment must route through set_frame_data_()/release_frame_data_()
// so the store refcount, the frame's shared flag, and the resident_bytes
// gauge move together. A direct `.data =` (or `.reset()`) silently corrupts
// dedup accounting and skips the copy-on-write split. The helpers' own
// assignment sites carry `// gvfs-lint: allow(frame-data-mutation)`.
const std::vector<TokenRule>& frame_data_rules() {
  static const std::vector<TokenRule> kRules = [] {
    std::vector<TokenRule> v;
    v.push_back(
        {"frame-data-mutation",
         std::regex(R"([\w\])]\s*(\.|->)\s*data\s*(=[^=]|\.\s*reset\s*\())"),
         "direct frame-payload mutation bypasses the CoW split helper "
         "(set_frame_data_/release_frame_data_); dedup refcounts and "
         "resident_bytes drift",
         {"data"}});
    return v;
  }();
  return kRules;
}

bool frame_data_scoped(const std::string& path) {
  return starts_with(path, "src/cache/block_cache");
}

// The server's lease table is the single source of truth for grant/recall
// ordering: every mutation must route through the sanctioned helpers
// (lease_add_holder_/lease_remove_holder_/lease_expire_holders_/clear_leases)
// so the expiry sweep, recall re-arm flag, and grant log move together. A
// direct `leases_[...]` or container-level erase/insert silently desyncs the
// recall state machine. The helpers' own sites carry
// a `// gvfs-lint: allow(lease-table-mutation)` annotation.
const std::vector<TokenRule>& lease_table_rules() {
  static const std::vector<TokenRule> kRules = [] {
    std::vector<TokenRule> v;
    v.push_back(
        {"lease-table-mutation",
         std::regex(
             R"(\bleases_\s*(\[|\.\s*(erase|emplace|insert|clear|try_emplace|insert_or_assign)\s*\())"),
         "direct lease-table mutation bypasses the sanctioned helpers "
         "(lease_add_holder_/lease_remove_holder_/lease_expire_holders_/"
         "clear_leases); recall re-arm and grant ordering drift",
         {"leases_"}});
    return v;
  }();
  return kRules;
}

bool lease_table_scoped(const std::string& path) {
  return starts_with(path, "src/nfs/nfs_server");
}

const std::vector<TokenRule>& print_rules() {
  static const std::vector<TokenRule> kRules = [] {
    std::vector<TokenRule> v;
    v.push_back({"stdout-print", std::regex(R"(std::cout\b)"),
                 "direct stdout outside the sanctioned bench/CLI print sites; "
                 "log via GVFS_* (stderr) instead",
                 {"cout"}});
    v.push_back({"stdout-print", std::regex(R"((^|[^\w.>])(printf|puts|putchar)\s*\()"),
                 "direct stdout outside the sanctioned bench/CLI print sites; "
                 "log via GVFS_* (stderr) instead",
                 {"printf", "puts", "putchar"}});
    return v;
  }();
  return kRules;
}

void apply_token_rules(const std::vector<TokenRule>& rules,
                       const std::vector<std::string>& code_lines,
                       const Suppressions& sup, const std::string& path,
                       std::vector<Finding>* out) {
  for (std::size_t i = 0; i < code_lines.size(); ++i) {
    int line = static_cast<int>(i) + 1;
    for (const TokenRule& r : rules) {
      if (r.gated_out(code_lines[i])) continue;
      if (sup.allowed(r.rule, line)) continue;
      if (std::regex_search(code_lines[i], r.pattern)) {
        out->push_back({path, line, r.rule, r.message});
      }
    }
  }
}

// ------------------------------------------- unordered-iteration rule ---

// Names of variables/members declared as unordered containers. Balances
// template angle brackets so nested parameters don't confuse the capture.
std::set<std::string> unordered_decl_names(const std::vector<std::string>& code_lines) {
  std::set<std::string> names;
  static const std::regex kDecl(R"(\bunordered_(map|set|multimap|multiset)\s*<)");
  for (const std::string& text : code_lines) {
    if (text.find("unordered_") == std::string::npos) continue;
    for (auto it = std::sregex_iterator(text.begin(), text.end(), kDecl);
         it != std::sregex_iterator(); ++it) {
      std::size_t pos = static_cast<std::size_t>(it->position()) + it->length();
      int depth = 1;
      while (pos < text.size() && depth > 0) {
        if (text[pos] == '<') ++depth;
        if (text[pos] == '>') --depth;
        ++pos;
      }
      // Skip refs/pointers/whitespace, then capture the declared name.
      while (pos < text.size() &&
             (std::isspace(static_cast<unsigned char>(text[pos])) != 0 ||
              text[pos] == '&' || text[pos] == '*')) {
        ++pos;
      }
      std::string name;
      while (pos < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[pos])) != 0 ||
              text[pos] == '_')) {
        name += text[pos++];
      }
      if (!name.empty()) names.insert(name);
    }
  }
  return names;
}

void apply_unordered_rule(const std::vector<std::string>& code_lines,
                          const std::set<std::string>& decls,
                          const Suppressions& sup, const std::string& path,
                          std::vector<Finding>* out) {
  if (decls.empty()) return;
  // Range-for over a declared unordered container (last path component of
  // the range expression), or an explicit .begin()/.cbegin() walk.
  static const std::regex kRangeFor(R"(\bfor\s*\([^;)]*:\s*([A-Za-z_][\w.\->]*)\s*\))");
  static const std::regex kBegin(R"(\b([A-Za-z_]\w*)\s*\.\s*c?begin\s*\()");
  auto last_component = [](std::string expr) {
    std::size_t dot = expr.find_last_of('.');
    std::size_t arrow = expr.rfind("->");
    std::size_t cut = std::string::npos;
    if (dot != std::string::npos) cut = dot + 1;
    if (arrow != std::string::npos && (cut == std::string::npos || arrow + 2 > cut)) {
      cut = arrow + 2;
    }
    return cut == std::string::npos ? expr : expr.substr(cut);
  };
  for (std::size_t i = 0; i < code_lines.size(); ++i) {
    int line = static_cast<int>(i) + 1;
    if (sup.allowed("unordered-iteration", line)) continue;
    const std::string& text = code_lines[i];
    std::smatch m;
    bool hit = false;
    if (text.find("for") != std::string::npos &&
        std::regex_search(text, m, kRangeFor) &&
        decls.count(last_component(m[1].str())) != 0) {
      hit = true;
    }
    if (!hit && text.find("begin") != std::string::npos &&
        std::regex_search(text, m, kBegin) && decls.count(m[1].str()) != 0) {
      hit = true;
    }
    if (hit) {
      out->push_back({path, line, "unordered-iteration",
                      "iteration order of an unordered container is "
                      "hash-seed dependent; sort first, use an ordered "
                      "container, or annotate why order cannot escape"});
    }
  }
}

// ------------------------------------------------------- tree walking ---

bool lintable_source(const fs::path& p) {
  std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".h" || ext == ".cpp" || ext == ".hpp";
}

bool skip_dir(const fs::path& p) {
  std::string name = p.filename().string();
  return name == "lint_fixtures" || starts_with(name, "build") ||
         name == ".git";
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

const std::vector<std::string>& all_rules() {
  static const std::vector<std::string> kRules = {
      "determinism-rng",  "determinism-clock",  "unordered-iteration",
      "stdout-print",     "raw-counter",        "header-guard",
      "cmake-registration", "cluster-factory",  "frame-data-mutation",
      "lease-table-mutation",
      "yield-stale-ref",  "yield-index-loop",   "yield-held-lock"};
  return kRules;
}

std::string to_string(const Finding& f) {
  return f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
         f.message;
}

std::vector<Finding> lint_content(const std::string& path,
                                  const std::string& content,
                                  const std::string& sibling_header) {
  std::vector<Finding> out;
  std::vector<std::string> raw = split_lines(content);
  std::vector<std::string> code = strip_code(content);
  Suppressions sup = parse_suppressions(raw);

  apply_token_rules(rng_rules(), code, sup, path, &out);
  if (!clock_exempt(path)) {
    apply_token_rules(clock_rules(), code, sup, path, &out);
  }
  if (!print_sanctioned(path)) {
    apply_token_rules(print_rules(), code, sup, path, &out);
  }
  if (counter_scoped(path)) {
    apply_token_rules(counter_rules(), code, sup, path, &out);
  }
  if (cluster_factory_scoped(path)) {
    apply_token_rules(cluster_factory_rules(), code, sup, path, &out);
  }
  if (frame_data_scoped(path)) {
    apply_token_rules(frame_data_rules(), code, sup, path, &out);
  }
  if (lease_table_scoped(path)) {
    apply_token_rules(lease_table_rules(), code, sup, path, &out);
  }
  if (unordered_scoped(path)) {
    std::set<std::string> decls = unordered_decl_names(code);
    if (!sibling_header.empty()) {
      std::set<std::string> extra = unordered_decl_names(strip_code(sibling_header));
      decls.insert(extra.begin(), extra.end());
    }
    apply_unordered_rule(code, decls, sup, path, &out);
  }
  if (is_header(path) && !sup.allowed("header-guard", 1) &&
      content.find("#pragma once") == std::string::npos) {
    out.push_back({path, 1, "header-guard", "header is missing #pragma once"});
  }
  return out;
}

namespace {

// One walk, one read per file: source contents keyed by repo-relative path,
// CMakeLists contents keyed by directory. Sibling-header lookups and the
// yield model reuse the same cache instead of re-reading from disk.
struct TreeFiles {
  std::vector<fs::path> files;                     // sorted absolute paths
  std::map<std::string, std::string> contents;     // rel path -> content
  std::map<std::string, std::string> cmake_content;  // rel dir -> content
  fs::path base;
};

TreeFiles collect_tree(const std::string& root) {
  TreeFiles t;
  t.base = fs::path(root);
  std::vector<fs::path> cmake_files;
  for (const char* top : {"src", "bench", "tests", "tools", "examples"}) {
    fs::path dir = t.base / top;
    if (!fs::exists(dir)) continue;
    for (auto it = fs::recursive_directory_iterator(dir);
         it != fs::recursive_directory_iterator(); ++it) {
      if (it->is_directory()) {
        if (skip_dir(it->path())) it.disable_recursion_pending();
        continue;
      }
      if (lintable_source(it->path())) t.files.push_back(it->path());
      if (it->path().filename() == "CMakeLists.txt") {
        cmake_files.push_back(it->path());
      }
    }
  }
  std::sort(t.files.begin(), t.files.end());
  std::sort(cmake_files.begin(), cmake_files.end());
  for (const fs::path& p : t.files) {
    t.contents[fs::relative(p, t.base).generic_string()] = read_file(p);
  }
  for (const fs::path& p : cmake_files) {
    t.cmake_content[fs::relative(p.parent_path(), t.base).generic_string()] =
        read_file(p);
  }
  return t;
}

// The call graph is built over src/ — the simulation libraries whose
// functions the yield rules reason about.
YieldModel build_src_model(const TreeFiles& t) {
  std::vector<std::pair<std::string, std::string>> inputs;
  for (const auto& [rel, content] : t.contents) {
    if (path_starts_with(rel, "src/")) inputs.push_back({rel, content});
  }
  return YieldModel::build(inputs);
}

}  // namespace

std::vector<Finding> lint_tree(const std::string& root) {
  std::vector<Finding> out;
  TreeFiles tree = collect_tree(root);
  const fs::path& base = tree.base;
  const std::map<std::string, std::string>& cmake_content = tree.cmake_content;
  YieldModel model = build_src_model(tree);

  for (const fs::path& p : tree.files) {
    std::string rel = fs::relative(p, base).generic_string();
    const std::string& content = tree.contents.at(rel);
    std::string sibling;
    if (p.extension() == ".cc" || p.extension() == ".cpp") {
      fs::path header = p;
      header.replace_extension(".h");
      auto sib = tree.contents.find(
          fs::relative(header, base).generic_string());
      if (sib != tree.contents.end()) sibling = sib->second;
    }
    std::vector<Finding> found = lint_content(rel, content, sibling);
    out.insert(out.end(), found.begin(), found.end());
    if (yield_rules_scoped(rel)) {
      std::vector<Finding> yf = analyze_content(rel, content, model);
      out.insert(out.end(), yf.begin(), yf.end());
    }

    // cmake-registration: compilation units must be named in their own or
    // an ancestor directory's CMakeLists.txt to be part of the build.
    if (p.extension() == ".cc" || p.extension() == ".cpp") {
      // Registered = the filename or its stem appears in an ancestor
      // CMakeLists.txt (tests/bench register by stem via helper functions).
      std::string name = p.filename().string();
      std::string stem = p.stem().string();
      bool registered = false;
      fs::path dir = fs::relative(p.parent_path(), base);
      for (fs::path d = dir;; d = d.parent_path()) {
        auto it = cmake_content.find(d.generic_string());
        if (it != cmake_content.end() &&
            (it->second.find(name) != std::string::npos ||
             it->second.find(stem) != std::string::npos)) {
          registered = true;
          break;
        }
        if (d.empty() || d == d.parent_path()) break;
      }
      if (!registered) {
        out.push_back({rel, 1, "cmake-registration",
                       "source file is not referenced by any CMakeLists.txt "
                       "on its directory path"});
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return out;
}

std::vector<std::string> tree_yield_model(const std::string& root) {
  return build_src_model(collect_tree(root)).golden_lines();
}

}  // namespace gvfs::lint
