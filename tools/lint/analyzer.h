// Yield-point invalidation rules over the may-yield model (yield_model.h).
//
// Scoped to the proxy cascade — src/proxy/, src/gvfs/, src/nfs/, src/cache/
// — where many fibers share one component instance and any blocking call
// lets another fiber mutate members:
//
//   yield-stale-ref    a reference/pointer/iterator into member state (a
//                      member container element, a `.find()` / `front()` /
//                      `back()` result, or a member function returning a
//                      pointer) stays live across a may-yield call.
//   yield-index-loop   an index-, iterator- or range-driven loop over a
//                      member container whose body may yield; the safe shape
//                      is a `while` that re-checks the container each pass.
//   yield-held-lock    a sim::Semaphore acquired (directly or via
//                      ScopedPermit) and still held across a yield, without
//                      a `// gvfs-yield: allow-held <reason>` annotation.
//
// Suppressions use the standard linter grammar on the finding line or its
// decl line: `// gvfs-lint: allow(yield-stale-ref) <reason>`.
#pragma once

#include <string>
#include <vector>

#include "lint/lint.h"
#include "lint/yield_model.h"

namespace gvfs::lint {

// True for paths the yield rules apply to.
[[nodiscard]] bool yield_rules_scoped(const std::string& path);

// Run the three yield rules over one file with a prebuilt model. The model
// must have been built over content that includes this (path, content) pair
// so function line ranges match.
[[nodiscard]] std::vector<Finding> analyze_content(const std::string& path,
                                                   const std::string& content,
                                                   const YieldModel& model);

}  // namespace gvfs::lint
