// Shared text plumbing for the linter and the yield-point analyzer:
// comment/string stripping, line splitting, and the `// gvfs-lint: allow(...)`
// suppression grammar. Definitions live in lint.cc; analyzer.cc and
// yield_model.cc reuse them so every pass sees the same token stream.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace gvfs::lint {

// Remove comments and string/char literals while preserving the line
// structure, so token matching never fires on prose or format strings.
[[nodiscard]] std::vector<std::string> strip_code(const std::string& content);

[[nodiscard]] std::vector<std::string> split_lines(const std::string& content);

[[nodiscard]] std::vector<std::string> split_csv(const std::string& s);

[[nodiscard]] bool path_starts_with(const std::string& s,
                                    const std::string& prefix);

struct Suppressions {
  std::set<std::string> file_allowed;
  // line number (1-based) -> rules allowed on that line
  std::map<int, std::set<std::string>> line_allowed;

  [[nodiscard]] bool allowed(const std::string& rule, int line) const {
    if (file_allowed.count(rule) != 0 || file_allowed.count("*") != 0) {
      return true;
    }
    auto it = line_allowed.find(line);
    if (it == line_allowed.end()) return false;
    return it->second.count(rule) != 0 || it->second.count("*") != 0;
  }
};

[[nodiscard]] Suppressions parse_suppressions(
    const std::vector<std::string>& raw_lines);

}  // namespace gvfs::lint
