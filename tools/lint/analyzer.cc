#include "lint/analyzer.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <regex>
#include <set>

#include "lint/text.h"

namespace gvfs::lint {
namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Member state in this repo follows the trailing-underscore convention, for
// both data members (`images_`) and private member functions returning
// pointers into members (`meta_for_`). `this->` also qualifies.
bool member_ish(const std::string& expr) {
  static const std::regex kMember(R"((\b[A-Za-z_]\w*_(\.|\(|\[|->|\b))|(this\s*->))");
  return std::regex_search(expr, kMember);
}

bool token_on_line(const std::string& line, const std::string& name) {
  std::size_t pos = 0;
  while ((pos = line.find(name, pos)) != std::string::npos) {
    bool left_ok = pos == 0 || (!ident_char(line[pos - 1]) &&
                                line[pos - 1] != '.' && line[pos - 1] != ':' &&
                                !(pos >= 2 && line[pos - 1] == '>' &&
                                  line[pos - 2] == '-'));
    std::size_t end = pos + name.size();
    bool right_ok = end >= line.size() || !ident_char(line[end]);
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

// `name = ...` (assignment, not comparison) somewhere on the line.
bool assigned_on_line(const std::string& line, const std::string& name) {
  std::size_t pos = 0;
  while ((pos = line.find(name, pos)) != std::string::npos) {
    bool left_ok = pos == 0 || (!ident_char(line[pos - 1]) &&
                                line[pos - 1] != '.' &&
                                !(pos >= 2 && line[pos - 1] == '>' &&
                                  line[pos - 2] == '-'));
    std::size_t end = pos + name.size();
    if (left_ok && (end >= line.size() || !ident_char(line[end]))) {
      std::size_t eq = end;
      while (eq < line.size() &&
             std::isspace(static_cast<unsigned char>(line[eq])) != 0) {
        ++eq;
      }
      if (eq < line.size() && line[eq] == '=' &&
          (eq + 1 >= line.size() || line[eq + 1] != '=')) {
        return true;
      }
    }
    pos = end;
  }
  return false;
}

// Line (1-based) of the '}' closing the block that contains `from_line`'s
// trailing text. Depth starts at 0 on the character after the match offset.
int block_end_line(const std::vector<std::string>& code, int from_line,
                   std::size_t from_col) {
  int depth = 0;
  for (std::size_t i = static_cast<std::size_t>(from_line) - 1; i < code.size();
       ++i) {
    const std::string& l = code[i];
    for (std::size_t c = (static_cast<int>(i) == from_line - 1 ? from_col : 0);
         c < l.size(); ++c) {
      if (l[c] == '{') ++depth;
      if (l[c] == '}') {
        --depth;
        if (depth < 0) return static_cast<int>(i) + 1;
      }
    }
  }
  return static_cast<int>(code.size());
}

// Collect the full `for (...)` header possibly spanning lines. Returns the
// header text and the line index (0-based) + column just past the ')'.
bool for_header(const std::vector<std::string>& code, std::size_t start_line,
                std::size_t open_col, std::string* header,
                std::size_t* end_line, std::size_t* end_col) {
  int depth = 0;
  for (std::size_t i = start_line; i < code.size() && i < start_line + 12; ++i) {
    const std::string& l = code[i];
    for (std::size_t c = (i == start_line ? open_col : 0); c < l.size(); ++c) {
      if (l[c] == '(') ++depth;
      if (l[c] == ')') {
        --depth;
        if (depth == 0) {
          *end_line = i;
          *end_col = c + 1;
          return true;
        }
      }
      if (depth > 0) *header += l[c];
    }
    *header += ' ';
  }
  return false;
}

struct FnView {
  const FunctionInfo* fn;
  std::set<int> yields;                       // 1-based yield lines
  std::vector<std::pair<int, int>> skip;      // nested fiber-lambda ranges
  [[nodiscard]] bool skipped(int line) const {
    for (const auto& r : skip) {
      if (line >= r.first && line <= r.second) return true;
    }
    return false;
  }
  [[nodiscard]] bool yields_in(int after, int until) const {
    auto it = yields.upper_bound(after);
    return it != yields.end() && *it <= until;
  }
  [[nodiscard]] int first_yield_in(int after, int until) const {
    auto it = yields.upper_bound(after);
    return (it != yields.end() && *it <= until) ? *it : 0;
  }
};

// --------------------------------------------------- rule: yield-stale-ref --

void rule_stale_ref(const FnView& v, const std::vector<std::string>& code,
                    const Suppressions& sup, const std::string& path,
                    std::vector<Finding>* out) {
  // Iterator-producing member calls bound to `auto`.
  static const std::regex kIterDecl(
      R"(\b(?:const\s+)?auto\s+(\w+)\s*=\s*([A-Za-z_][\w.\->]*)\s*\.\s*)"
      R"((?:find|begin|cbegin|rbegin|lower_bound|upper_bound)\s*\()");
  // Reference / pointer declarations initialized from member state.
  static const std::regex kRefDecl(
      R"(\b(?:const\s+)?(?:auto|[A-Za-z_][\w:]*(?:<[^;=()]*>)?)\s*)"
      R"((?:const\s*)?[&*]\s*(\w+)\s*=\s*([^;]+);)");

  struct Tracked {
    int decl_line = 0;
    int dirty_yield = 0;  // 0 = clean; else the yield line that dirtied it
  };
  std::map<std::string, Tracked> live;

  for (int L = v.fn->body_begin; L <= v.fn->body_end &&
                                 L <= static_cast<int>(code.size());
       ++L) {
    if (v.skipped(L)) continue;
    const std::string& line = code[static_cast<std::size_t>(L) - 1];

    // Re-assignment refreshes a stale handle (the post-yield re-find idiom).
    for (auto& [name, t] : live) {
      if (t.dirty_yield != 0 && assigned_on_line(line, name)) t.dirty_yield = 0;
    }

    // Uses of dirty handles (before new decls: `auto it = ..` re-declares).
    for (auto it = live.begin(); it != live.end();) {
      Tracked& t = it->second;
      bool redecl = false;
      std::smatch dm;
      if (std::regex_search(line, dm, kIterDecl) && dm[1].str() == it->first) {
        redecl = true;
      }
      if (t.dirty_yield != 0 && !redecl && !assigned_on_line(line, it->first) &&
          token_on_line(line, it->first)) {
        if (!sup.allowed("yield-stale-ref", L) &&
            !sup.allowed("yield-stale-ref", t.decl_line)) {
          out->push_back(
              {path, L, "yield-stale-ref",
               "`" + it->first + "` (declared line " +
                   std::to_string(t.decl_line) +
                   ") points into member state and is used after the "
                   "may-yield call on line " +
                   std::to_string(t.dirty_yield) +
                   "; another fiber may have mutated the container — "
                   "re-acquire after the wait or copy the value first"});
        }
        it = live.erase(it);
        continue;
      }
      ++it;
    }

    // New declarations. Substring gates keep std::regex off the hot path.
    std::smatch m;
    if (line.find("auto") != std::string::npos) {
      std::string rest = line;
      while (std::regex_search(rest, m, kIterDecl)) {
        if (member_ish(m[2].str())) live[m[1].str()] = {L, 0};
        rest = m.suffix().str();
      }
    }
    if (line.find('=') != std::string::npos &&
        (line.find('&') != std::string::npos ||
         line.find('*') != std::string::npos)) {
      std::string rest = line;
      while (std::regex_search(rest, m, kRefDecl)) {
        if (member_ish(m[2].str())) live[m[1].str()] = {L, 0};
        rest = m.suffix().str();
      }
    }

    // Yield: everything declared before this line goes stale. Declarations
    // and uses on the yield line itself are argument evaluations — pre-yield.
    // A handle *assigned* on the yield line stays fresh: that is the
    // re-acquire idiom (`it = map_.find(k)` after — or via — a blocking
    // call), and the assignment lands after the call returns.
    if (v.yields.count(L) != 0) {
      for (auto& [name, t] : live) {
        if (t.decl_line < L && t.dirty_yield == 0 &&
            !assigned_on_line(line, name)) {
          t.dirty_yield = L;
        }
      }
    }
  }
}

// -------------------------------------------------- rule: yield-index-loop --

// The init + condition clauses of a classic for-header (everything up to the
// second top-level ';'). The increment clause is dropped: it re-evaluates a
// bound but never holds an iterator.
std::string init_and_cond_(const std::string& header) {
  int depth = 0;
  int semis = 0;
  for (std::size_t i = 0; i < header.size(); ++i) {
    char c = header[i];
    if (c == '(' || c == '[' || c == '{') ++depth;
    if (c == ')' || c == ']' || c == '}') --depth;
    if (c == ';' && depth == 0 && ++semis == 2) return header.substr(0, i);
  }
  return header;
}

void rule_index_loop(const FnView& v, const std::vector<std::string>& code,
                     const Suppressions& sup, const std::string& path,
                     std::vector<Finding>* out) {
  static const std::regex kFor(R"(\bfor\s*\()");
  static const std::regex kLoopVar(R"(\b([A-Za-z_]\w*)\s*=)");

  for (int L = v.fn->body_begin; L <= v.fn->body_end &&
                                 L <= static_cast<int>(code.size());
       ++L) {
    if (v.skipped(L)) continue;
    const std::string& line = code[static_cast<std::size_t>(L) - 1];
    if (line.find("for") == std::string::npos) continue;
    std::smatch m;
    if (!std::regex_search(line, m, kFor)) continue;

    std::size_t open_col = static_cast<std::size_t>(m.position()) +
                           static_cast<std::size_t>(m.length()) - 1;
    std::string header;
    std::size_t hl = 0;
    std::size_t hc = 0;
    if (!for_header(code, static_cast<std::size_t>(L) - 1, open_col, &header,
                    &hl, &hc)) {
      continue;
    }

    // Body range: `{ .. }` or a single statement.
    int body_first = static_cast<int>(hl) + 1;
    int body_last = body_first;
    std::size_t c = hc;
    std::size_t bl = hl;
    while (bl < code.size()) {
      const std::string& t = code[bl];
      while (c < t.size() &&
             std::isspace(static_cast<unsigned char>(t[c])) != 0) {
        ++c;
      }
      if (c < t.size()) break;
      ++bl;
      c = 0;
    }
    if (bl >= code.size()) continue;
    if (code[bl][c] == '{') {
      body_first = static_cast<int>(bl) + 1;
      body_last = block_end_line(code, body_first, c + 1);
    } else {
      body_first = static_cast<int>(bl) + 1;
      body_last = body_first;
      for (std::size_t i = bl; i < code.size() && i < bl + 8; ++i) {
        if (code[i].find(';') != std::string::npos) {
          body_last = static_cast<int>(i) + 1;
          break;
        }
      }
    }

    // Candidate: header walks a member container, or the body indexes one
    // with the loop variable. A classic for-header only qualifies when its
    // init/condition clauses *call into* member state (`i < q_.size()`,
    // `it != map_.end()`) — a plain config-field read in the increment
    // (`off += cfg_.page_size`) is a fixed bound, not an invalidation hazard.
    static const std::regex kMemberCall(
        R"((\b[A-Za-z_]\w*_|this\s*->\s*\w+)\s*(\.|->)\s*\w+\s*\()");
    bool candidate = false;
    std::size_t colon = header.find(':');
    if (colon != std::string::npos && colon + 1 < header.size() &&
        header[colon + 1] != ':' && (colon == 0 || header[colon - 1] != ':')) {
      candidate = member_ish(header.substr(colon + 1));  // range-for
    } else if (std::string ic = init_and_cond_(header);
               std::regex_search(ic, m, kMemberCall)) {
      candidate = true;  // e.g. `i < queue_.size()` / `it != map_.end()`
    } else if (std::regex_search(header, m, kLoopVar)) {
      std::string var = m[1].str();
      std::regex idx(R"(\b[A-Za-z_]\w*_\s*(\[\s*)" + var + R"(\s*\]|\.at\s*\(\s*)" +
                     var + R"(\s*\)))");
      for (int B = body_first; B <= body_last && B <= static_cast<int>(code.size());
           ++B) {
        if (std::regex_search(code[static_cast<std::size_t>(B) - 1], idx)) {
          candidate = true;
          break;
        }
      }
    }
    if (!candidate) continue;

    int yl = v.first_yield_in(L, body_last);
    if (yl == 0) continue;
    bool inner_skipped = v.skipped(yl);
    if (inner_skipped) continue;
    if (sup.allowed("yield-index-loop", L)) continue;
    out->push_back(
        {path, L, "yield-index-loop",
         "loop over member container may yield inside its body (line " +
             std::to_string(yl) +
             "); indices/iterators can be invalidated by another fiber — "
             "snapshot the work list or drain via a re-checking while-loop"});
  }
}

// -------------------------------------------------- rule: yield-held-lock --

void rule_held_lock(const FnView& v, const std::vector<std::string>& code,
                    const std::vector<std::string>& raw,
                    const Suppressions& sup, const std::string& path,
                    std::vector<Finding>* out) {
  static const std::regex kPermit(R"(\b(?:sim\s*::\s*)?ScopedPermit\s+(\w+)\s*[({])");
  static const std::regex kAcquire(R"(\b([A-Za-z_][\w.\->]*)\s*\.\s*acquire\s*\()");
  static const std::regex kAllowHeld(R"(gvfs-yield:\s*allow-held\b)");

  auto allow_held_at = [&](int L) {
    for (int cand : {L, L - 1}) {
      if (cand >= 1 && cand <= static_cast<int>(raw.size()) &&
          std::regex_search(raw[static_cast<std::size_t>(cand) - 1],
                            kAllowHeld)) {
        return true;
      }
    }
    return false;
  };

  for (int L = v.fn->body_begin; L <= v.fn->body_end &&
                                 L <= static_cast<int>(code.size());
       ++L) {
    if (v.skipped(L)) continue;
    const std::string& line = code[static_cast<std::size_t>(L) - 1];
    if (line.find("ScopedPermit") == std::string::npos &&
        line.find("acquire") == std::string::npos) {
      continue;
    }
    std::smatch m;
    int held_until = 0;
    std::string what;
    if (std::regex_search(line, m, kPermit)) {
      held_until = block_end_line(
          code, L, static_cast<std::size_t>(m.position() + m.length()));
      what = "ScopedPermit " + m[1].str();
    } else if (std::regex_search(line, m, kAcquire)) {
      std::string obj = m[1].str();
      std::size_t dot = obj.find_last_of('.');
      std::string leaf = dot == std::string::npos ? obj : obj.substr(dot + 1);
      held_until = block_end_line(
          code, L, static_cast<std::size_t>(m.position() + m.length()));
      for (int R = L + 1;
           R <= v.fn->body_end && R <= static_cast<int>(code.size()); ++R) {
        if (code[static_cast<std::size_t>(R) - 1].find(leaf + ".release") !=
                std::string::npos ||
            code[static_cast<std::size_t>(R) - 1].find(obj + ".release") !=
                std::string::npos) {
          held_until = std::min(held_until, R);
          break;
        }
      }
      what = obj + ".acquire()";
    } else {
      continue;
    }

    // Yields strictly after the acquire line (the acquire itself may block;
    // that is the acquisition, not a hold-across-yield).
    int yl = v.first_yield_in(L, held_until);
    if (yl == 0 || v.skipped(yl)) continue;
    if (sup.allowed("yield-held-lock", L) || allow_held_at(L)) continue;
    out->push_back(
        {path, L, "yield-held-lock",
         what + " is still held across the may-yield call on line " +
             std::to_string(yl) +
             "; release before waiting or annotate the acquire with "
             "`// gvfs-yield: allow-held <reason>`"});
  }
}

}  // namespace

bool yield_rules_scoped(const std::string& path) {
  return path_starts_with(path, "src/proxy/") ||
         path_starts_with(path, "src/gvfs/") ||
         path_starts_with(path, "src/nfs/") ||
         path_starts_with(path, "src/cache/");
}

std::vector<Finding> analyze_content(const std::string& path,
                                     const std::string& content,
                                     const YieldModel& model) {
  std::vector<Finding> out;
  if (!yield_rules_scoped(path)) return out;
  std::vector<std::string> code = strip_code(content);
  std::vector<std::string> raw = split_lines(content);
  Suppressions sup = parse_suppressions(raw);

  std::vector<const FunctionInfo*> fns = model.functions_in(path);
  for (const FunctionInfo* fn : fns) {
    if (fn->process_param.empty()) continue;
    FnView v;
    v.fn = fn;
    for (int yl : model.yield_lines(*fn)) v.yields.insert(yl);
    if (v.yields.empty()) continue;
    for (const FunctionInfo* inner : fns) {
      if (inner == fn || inner->process_param.empty()) continue;
      if (inner->body_begin > fn->body_begin && inner->body_end < fn->body_end) {
        v.skip.push_back({inner->body_begin, inner->body_end});
      }
    }
    rule_stale_ref(v, code, sup, path, &out);
    rule_index_loop(v, code, sup, path, &out);
    rule_held_lock(v, code, raw, sup, path, &out);
  }
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return out;
}

}  // namespace gvfs::lint
