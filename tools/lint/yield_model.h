// Interprocedural may-yield model over the repo's own call graph.
//
// The simulator is cooperatively scheduled: a fiber runs uninterrupted until
// it blocks on a sim primitive (Signal::wait via Process::wait/delay,
// Semaphore::acquire, Link::transmit, DiskModel::access, rpc::Channel::call*,
// CpuPool::run). Every such call is a scheduling point where *any* other
// fiber may mutate shared state — the repo's recurring bug class is state
// read before a yield and trusted after it.
//
// This model recovers function definitions from the stripped token stream
// (tools/lint/text.h) and computes the transitive may-yield set by fixpoint:
//
//   seeds:  direct primitive calls that pass the sim::Process& handle
//           (`p.wait(..)`, `sem_.acquire(p)`, `chan->call(p, ..)`, ...) and
//           anything annotated `// gvfs-yield: yields`.
//   edges:  a call site that passes the caller's process parameter to a
//           callee. Yielding requires the Process handle, so propagation is
//           keyed on process-passing calls — spawn-lambda bodies (which run
//           on a different fiber under their own Process&) naturally do not
//           mark their spawner.
//
// Known approximations (see DESIGN.md §5.8): propagation is by simple callee
// name (over-approximate on collisions), and a callee that yields through a
// *stored* process handle rather than a parameter must carry the
// `// gvfs-yield: yields` annotation (under-approximate otherwise).
#pragma once

#include <set>
#include <string>
#include <utility>
#include <vector>

namespace gvfs::lint {

struct CallSite {
  std::string callee;  // simple name of the called function
  int line = 0;        // 1-based line of the call
};

// One function (or Process-taking lambda) recovered from a file.
struct FunctionInfo {
  std::string file;       // repo-relative path
  std::string qual_name;  // "Class::name" where recoverable, else "name"
  std::string name;       // simple name ("<lambda>" for anonymous fibers)
  int header_line = 0;    // line where the signature's name appears
  int body_begin = 0;     // line of the opening '{'
  int body_end = 0;       // line of the matching '}'
  std::string process_param;        // sim::Process& parameter name, "" if none
  std::vector<CallSite> calls;      // calls that pass the process handle
  std::vector<int> primitive_lines; // direct p.wait()/p.delay*() sites
  bool annotated_yield = false;     // carries `// gvfs-yield: yields`
  bool may_yield = false;           // result of the fixpoint
};

class YieldModel {
 public:
  // Build from (repo-relative path, raw content) pairs. All files participate
  // in one call graph so yields propagate across directories.
  [[nodiscard]] static YieldModel build(
      const std::vector<std::pair<std::string, std::string>>& files);

  // May any function with this simple name yield?
  [[nodiscard]] bool name_may_yield(const std::string& simple_name) const;

  [[nodiscard]] const std::vector<FunctionInfo>& functions() const {
    return fns_;
  }
  [[nodiscard]] std::vector<const FunctionInfo*> functions_in(
      const std::string& file) const;

  // Sorted 1-based lines within `fn` where control may yield to another
  // fiber.
  [[nodiscard]] std::vector<int> yield_lines(const FunctionInfo& fn) const;

  // Sorted unique "file:qual_name" lines for every may-yield function — the
  // format committed under tools/lint/yield_model_golden.txt.
  [[nodiscard]] std::vector<std::string> golden_lines() const;

 private:
  std::vector<FunctionInfo> fns_;
  std::set<std::string> yield_names_;
};

}  // namespace gvfs::lint
