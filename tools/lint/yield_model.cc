#include "lint/yield_model.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <regex>

#include "lint/text.h"

namespace gvfs::lint {
namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Sim primitives that block the calling fiber. A call site passing the
// process handle to one of these names seeds the fixpoint.
const std::set<std::string>& primitive_names() {
  static const std::set<std::string> kNames = {
      "wait",     "delay",        "delay_until", "acquire",
      "transmit", "transmit_ex",  "access",      "call",
      "call_pipelined", "run",    "sleep",       "yield",
      "ScopedPermit"};
  return kNames;
}

const std::set<std::string>& keywords() {
  static const std::set<std::string> kWords = {
      "if",     "for",    "while", "switch",        "return", "sizeof",
      "catch",  "case",   "do",    "else",          "new",    "delete",
      "throw",  "goto",   "try",   "static_assert", "alignof", "decltype",
      "co_return", "co_await", "default", "using", "typedef", "operator"};
  return kWords;
}

// Leading tokens that introduce a non-function brace.
const std::set<std::string>& type_intro() {
  static const std::set<std::string> kWords = {"class", "struct", "enum",
                                               "union", "namespace"};
  return kWords;
}

struct Pos {
  std::size_t i = 0;  // byte offset into the joined text
  int line = 1;       // 1-based
};

// Joined stripped text plus a byte-offset -> line mapping.
struct Text {
  std::string s;
  std::vector<int> line_of;  // line_of[i] = 1-based line of byte i

  explicit Text(const std::vector<std::string>& lines) {
    int ln = 1;
    for (const std::string& l : lines) {
      for (char c : l) {
        s += c;
        line_of.push_back(ln);
      }
      s += '\n';
      line_of.push_back(ln);
      ++ln;
    }
  }
  [[nodiscard]] int line(std::size_t i) const {
    return i < line_of.size() ? line_of[i] : (line_of.empty() ? 1 : line_of.back());
  }
};

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\n");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\n");
  return s.substr(b, e - b + 1);
}

std::string first_token(const std::string& s) {
  std::size_t b = 0;
  while (b < s.size() && !ident_char(s[b])) {
    if (s[b] == '[' || s[b] == ']') {
      ++b;  // walk past [[attributes]]
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(s[b])) != 0) {
      ++b;
      continue;
    }
    return "";  // starts with an operator/punct: not a keyword header
  }
  std::size_t e = b;
  while (e < s.size() && ident_char(s[e])) ++e;
  return s.substr(b, e - b);
}

// Find the statement start for the '{' at `brace`: scan backward to the
// nearest ';', '{' or '}' at paren depth 0. An unmatched '(' (depth going
// past its opener) also terminates — that is a lambda argument position.
std::size_t header_start(const std::string& s, std::size_t brace) {
  int depth = 0;
  for (std::size_t i = brace; i-- > 0;) {
    char c = s[i];
    if (c == ')') ++depth;
    if (c == '(') {
      if (depth == 0) return i + 1;  // inside an enclosing call: lambda arg
      --depth;
    }
    if (depth == 0 && (c == ';' || c == '{' || c == '}')) return i + 1;
  }
  return 0;
}

// Skip a balanced <...> group backward from s[i]=='>'. Returns the index of
// the matching '<', or npos if unbalanced / too far.
std::size_t skip_angles_back(const std::string& s, std::size_t i) {
  int depth = 0;
  std::size_t limit = i > 400 ? i - 400 : 0;
  for (std::size_t j = i + 1; j-- > limit;) {
    if (s[j] == '>') ++depth;
    if (s[j] == '<') {
      --depth;
      if (depth == 0) return j;
    }
    if (s[j] == ';' || s[j] == '{' || s[j] == '}') break;
  }
  return std::string::npos;
}

// Skip a balanced <...> group forward from s[i]=='<'. Returns index one past
// the matching '>', or npos.
std::size_t skip_angles_fwd(const std::string& s, std::size_t i) {
  int depth = 0;
  std::size_t limit = std::min(s.size(), i + 400);
  for (std::size_t j = i; j < limit; ++j) {
    if (s[j] == '<') ++depth;
    if (s[j] == '>') {
      --depth;
      if (depth == 0) return j + 1;
    }
    if (s[j] == ';' || s[j] == '{') break;
  }
  return std::string::npos;
}

// Matching ')' for the '(' at `open`, or npos.
std::size_t match_paren(const std::string& s, std::size_t open) {
  int depth = 0;
  for (std::size_t j = open; j < s.size(); ++j) {
    if (s[j] == '(') ++depth;
    if (s[j] == ')') {
      --depth;
      if (depth == 0) return j;
    }
  }
  return std::string::npos;
}

// Does `name` occur as a standalone token in s[b, e)?
bool has_token(const std::string& s, std::size_t b, std::size_t e,
               const std::string& name) {
  std::size_t pos = b;
  while ((pos = s.find(name, pos)) != std::string::npos && pos < e) {
    bool left_ok = pos == 0 || !ident_char(s[pos - 1]);
    std::size_t end = pos + name.size();
    bool right_ok = end >= s.size() || !ident_char(s[end]);
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

const std::regex& process_param_re() {
  static const std::regex kRe(R"((?:sim\s*::\s*)?Process\s*&\s*([A-Za-z_]\w*))");
  return kRe;
}

// Classification of the text introducing a '{'.
struct HeaderInfo {
  enum class Kind { kOther, kFunction, kType } kind = Kind::kOther;
  std::string name;        // function simple name / class name
  std::string qual;        // explicit A::B qualifier on a function name
  std::string process_param;
  int name_line_off = 0;   // byte offset of the name within the full text
};

HeaderInfo classify_header(const std::string& header, std::size_t base) {
  HeaderInfo h;
  std::string t = trim(header);
  if (t.empty()) return h;
  // Offset of `t` within the untrimmed header, so name_line_off lands on the
  // byte the name actually occupies in the full text.
  std::size_t lead = header.find_first_not_of(" \t\n");
  std::string tok = first_token(t);
  if (type_intro().count(tok) != 0) {
    h.kind = HeaderInfo::Kind::kType;
    // class/struct NAME [final] [: bases]
    static const std::regex kType(
        R"(\b(?:class|struct|enum(?:\s+class)?|union|namespace)\s+([A-Za-z_]\w*))");
    std::smatch m;
    if (std::regex_search(t, m, kType)) h.name = m[1].str();
    return h;
  }
  if (keywords().count(tok) != 0) return h;

  // Lambda? Strip leading [[attributes]], then check for a capture list.
  std::string body = t;
  while (body.size() > 1 && body[0] == '[' && body[1] == '[') {
    std::size_t close = body.find("]]");
    if (close == std::string::npos) break;
    body = trim(body.substr(close + 2));
  }
  if (!body.empty() && body[0] == '[') {
    // Lambda. Treat as an anonymous function if it takes a Process& (it runs
    // as its own fiber or is a callback that may block on its own handle).
    std::smatch m;
    if (std::regex_search(body, m, process_param_re())) {
      h.kind = HeaderInfo::Kind::kFunction;
      h.name = "<lambda>";
      h.process_param = m[1].str();
    }
    return h;
  }
  // `= [..](..)` lambda assigned to a variable reaches here with '=' inside.
  // A top-level '=' before the first '(' means this is not a definition.
  std::size_t first_paren = body.find('(');
  if (first_paren == std::string::npos) return h;
  std::size_t eq = body.find('=');
  if (eq != std::string::npos && eq < first_paren) {
    std::smatch m;
    if (body.find('[') != std::string::npos &&
        std::regex_search(body, m, process_param_re())) {
      h.kind = HeaderInfo::Kind::kFunction;
      h.name = "<lambda>";
      h.process_param = m[1].str();
    }
    return h;
  }

  std::size_t close = match_paren(body, first_paren);
  if (close == std::string::npos) return h;

  // Validate the tail after the parameter list: only specifiers, a trailing
  // return type, or a constructor init list may precede the '{'.
  std::string tail = trim(body.substr(close + 1));
  if (!tail.empty() && tail[0] != ':') {
    static const std::regex kTailOk(
        R"(^(\s*(const|noexcept(\s*\([^)]*\))?|override|final|mutable|&&?|->\s*[\w:<>,&*\s]+))*\s*$)");
    if (!std::regex_match(tail, kTailOk)) return h;
  }

  // Name: identifier immediately before the parameter '('; collect a leading
  // A::B qualifier chain (skipping template argument groups).
  std::size_t p = first_paren;
  while (p > 0 && std::isspace(static_cast<unsigned char>(body[p - 1])) != 0) --p;
  std::size_t name_end = p;
  while (p > 0 && ident_char(body[p - 1])) --p;
  if (p == name_end) return h;  // operator overloads etc.: skip
  h.name = body.substr(p, name_end - p);
  if (keywords().count(h.name) != 0 || type_intro().count(h.name) != 0) return h;
  // Reject macro-style all-caps invocations at file scope (TEST(..), GVFS_..)
  // only when they have no parameter types — cheap heuristic: keep them;
  // they become harmless graph nodes.
  std::string qual;
  std::size_t q = p;
  while (q >= 2 && body[q - 1] == ':' && body[q - 2] == ':') {
    q -= 2;
    if (q > 0 && body[q - 1] == '>') {
      std::size_t lt = skip_angles_back(body, q - 1);
      if (lt == std::string::npos) break;
      q = lt;
    }
    std::size_t qe = q;
    while (q > 0 && ident_char(body[q - 1])) --q;
    if (q == qe) break;
    qual = body.substr(q, qe - q) + (qual.empty() ? "" : "::") + qual;
  }
  h.qual = qual;
  h.kind = HeaderInfo::Kind::kFunction;
  h.name_line_off = static_cast<int>(base + lead + (t.size() - body.size()) + p);

  std::string params = body.substr(first_paren, close - first_paren + 1);
  std::smatch m;
  if (std::regex_search(params, m, process_param_re())) {
    h.process_param = m[1].str();
  }
  return h;
}

// Pass 1: recover function definitions (with body line ranges) from one file.
void collect_functions(const std::string& file,
                       const std::vector<std::string>& code_lines,
                       std::vector<FunctionInfo>* out) {
  Text text(code_lines);
  const std::string& s = text.s;

  struct Ctx {
    bool is_function = false;
    int fn_index = -1;           // index into *out
    std::string class_name;      // set for type braces
  };
  std::vector<Ctx> stack;
  std::vector<std::string> class_stack;

  for (std::size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c == '{') {
      std::size_t hs = header_start(s, i);
      HeaderInfo h = classify_header(s.substr(hs, i - hs), hs);
      Ctx ctx;
      if (h.kind == HeaderInfo::Kind::kFunction) {
        FunctionInfo fn;
        fn.file = file;
        fn.name = h.name;
        fn.qual_name = !h.qual.empty() ? h.qual + "::" + h.name
                       : (!class_stack.empty() && h.name != "<lambda>"
                              ? class_stack.back() + "::" + h.name
                              : h.name);
        // Anchor on the name, not the statement start: the backward scan for
        // the statement start stops at the previous member's ';', which can
        // sit lines above the signature and would misattribute
        // `// gvfs-yield: yields` annotations between the two.
        fn.header_line = h.name != "<lambda>"
                             ? text.line(static_cast<std::size_t>(h.name_line_off))
                             : text.line(hs);
        fn.body_begin = text.line(i);
        fn.process_param = h.process_param;
        ctx.is_function = true;
        ctx.fn_index = static_cast<int>(out->size());
        out->push_back(std::move(fn));
      } else if (h.kind == HeaderInfo::Kind::kType && !h.name.empty()) {
        ctx.class_name = h.name;
        class_stack.push_back(h.name);
      }
      stack.push_back(ctx);
    } else if (c == '}') {
      if (!stack.empty()) {
        Ctx ctx = stack.back();
        stack.pop_back();
        if (ctx.is_function) (*out)[ctx.fn_index].body_end = text.line(i);
        if (!ctx.class_name.empty()) class_stack.pop_back();
      }
    }
  }
  // Unterminated bodies (truncated input): close at EOF.
  for (FunctionInfo& fn : *out) {
    if (fn.body_end == 0) fn.body_end = text.line(s.size() - 1);
  }
}

// Pass 2: scan one function's body for primitive yields and process-passing
// call sites. `skip` holds nested [begin, end] line ranges (inner lambdas
// with their own Process parameter) excluded from this function's view.
void collect_calls(const Text& text, FunctionInfo* fn,
                   const std::vector<std::pair<int, int>>& skip) {
  if (fn->process_param.empty()) return;
  const std::string& s = text.s;
  const std::string& pname = fn->process_param;

  auto skipped = [&](int line) {
    for (const auto& r : skip) {
      if (line >= r.first && line <= r.second) return true;
    }
    return false;
  };

  std::size_t i = 0;
  // Seek to body start.
  while (i < s.size() && text.line(i) < fn->body_begin) ++i;
  for (; i < s.size() && text.line(i) <= fn->body_end; ++i) {
    if (!ident_char(s[i])) continue;
    std::size_t b = i;
    while (i < s.size() && ident_char(s[i])) ++i;
    std::string tok = s.substr(b, i - b);
    int line = text.line(b);
    if (b > 0 && (ident_char(s[b - 1]) || s[b - 1] == '$')) continue;
    if (skipped(line)) {
      --i;
      continue;
    }

    std::size_t j = i;
    while (j < s.size() && std::isspace(static_cast<unsigned char>(s[j])) != 0) ++j;

    if (tok == pname && j < s.size() && s[j] == '.') {
      // p.wait(..) / p.delay(..) / p.delay_until(..): direct primitives.
      std::size_t mb = j + 1;
      while (mb < s.size() && std::isspace(static_cast<unsigned char>(s[mb])) != 0) ++mb;
      std::size_t me = mb;
      while (me < s.size() && ident_char(s[me])) ++me;
      std::string method = s.substr(mb, me - mb);
      if (method == "wait" || method == "delay" || method == "delay_until") {
        fn->primitive_lines.push_back(line);
      }
      i = b;  // let the method token be scanned normally too
      continue;
    }

    // Candidate call or declaration: identifier [<T..>] (
    std::size_t open = j;
    if (open < s.size() && s[open] == '<') {
      std::size_t past = skip_angles_fwd(s, open);
      if (past == std::string::npos) {
        --i;
        continue;
      }
      open = past;
      while (open < s.size() &&
             std::isspace(static_cast<unsigned char>(s[open])) != 0) {
        ++open;
      }
    }
    if (open >= s.size() || s[open] != '(') {
      --i;
      continue;
    }
    if (keywords().count(tok) != 0) {
      --i;
      continue;
    }

    // Declaration form `Type name(p, ..)`? Then the yield belongs to Type's
    // constructor (e.g. ScopedPermit). Receiver calls `x.name(` / `x->name(`
    // and plain calls keep `tok`.
    std::string callee = tok;
    std::size_t prev = b;
    while (prev > 0 && std::isspace(static_cast<unsigned char>(s[prev - 1])) != 0) --prev;
    if (prev > 0) {
      char pc = s[prev - 1];
      bool arrow = pc == '>' && prev > 1 && s[prev - 2] == '-';
      if (!arrow && (ident_char(pc) || pc == '>' || pc == '&' || pc == '*')) {
        // Preceded by a type-ish token: a declaration. Find the type's last
        // identifier (walk back over &, *, and template args).
        std::size_t q = prev;
        while (q > 0 && (s[q - 1] == '&' || s[q - 1] == '*' ||
                         std::isspace(static_cast<unsigned char>(s[q - 1])) != 0)) {
          --q;
        }
        if (q > 0 && s[q - 1] == '>') {
          std::size_t lt = skip_angles_back(s, q - 1);
          if (lt != std::string::npos) q = lt;
        }
        std::size_t qe = q;
        while (q > 0 && ident_char(s[q - 1])) --q;
        std::string type_tok = s.substr(q, qe - q);
        if (!type_tok.empty() && keywords().count(type_tok) == 0) {
          callee = type_tok;
        }
      }
    }

    std::size_t close = match_paren(s, open);
    if (close == std::string::npos) {
      --i;
      continue;
    }
    if (has_token(s, open + 1, close, pname)) {
      fn->calls.push_back({callee, line});
    }
    --i;
  }
}

}  // namespace

YieldModel YieldModel::build(
    const std::vector<std::pair<std::string, std::string>>& files) {
  YieldModel model;
  static const std::regex kYieldsAnnot(R"(gvfs-yield:\s*yields\b)");

  for (const auto& [path, content] : files) {
    std::vector<std::string> code = strip_code(content);
    std::size_t first = model.fns_.size();
    collect_functions(path, code, &model.fns_);

    // Map `// gvfs-yield: yields` annotations (raw lines — comments are
    // stripped from the code view) onto the function containing them, or the
    // one whose header starts on the next line.
    std::vector<std::string> raw = split_lines(content);
    std::vector<int> annot_lines;
    for (std::size_t i = 0; i < raw.size(); ++i) {
      if (std::regex_search(raw[i], kYieldsAnnot)) {
        annot_lines.push_back(static_cast<int>(i) + 1);
      }
    }
    for (int al : annot_lines) {
      FunctionInfo* best = nullptr;
      for (std::size_t k = first; k < model.fns_.size(); ++k) {
        FunctionInfo& fn = model.fns_[k];
        bool inside = al >= fn.header_line && al <= fn.body_end;
        bool above = fn.header_line == al + 1;
        if (!inside && !above) continue;
        // Innermost containing function wins.
        if (best == nullptr || fn.header_line >= best->header_line) best = &fn;
      }
      if (best != nullptr) best->annotated_yield = true;
    }

    // Call collection, excluding nested Process-taking lambda bodies (those
    // run as their own fibers; their yields are theirs, not their spawner's).
    Text text(code);
    for (std::size_t k = first; k < model.fns_.size(); ++k) {
      FunctionInfo& fn = model.fns_[k];
      std::vector<std::pair<int, int>> skip;
      for (std::size_t n = first; n < model.fns_.size(); ++n) {
        if (n == k) continue;
        const FunctionInfo& inner = model.fns_[n];
        if (inner.body_begin >= fn.body_begin && inner.body_end <= fn.body_end &&
            !inner.process_param.empty()) {
          skip.push_back({inner.body_begin, inner.body_end});
        }
      }
      collect_calls(text, &fn, skip);
    }
  }

  // Fixpoint over simple names.
  model.yield_names_ = primitive_names();
  bool changed = true;
  while (changed) {
    changed = false;
    for (FunctionInfo& fn : model.fns_) {
      if (fn.may_yield) continue;
      bool yields = fn.annotated_yield || !fn.primitive_lines.empty();
      if (!yields) {
        for (const CallSite& cs : fn.calls) {
          if (model.yield_names_.count(cs.callee) != 0) {
            yields = true;
            break;
          }
        }
      }
      if (yields) {
        fn.may_yield = true;
        if (fn.name != "<lambda>" &&
            model.yield_names_.insert(fn.name).second) {
          changed = true;
        } else {
          changed = true;  // later-listed callers may still depend on order
        }
      }
    }
  }
  return model;
}

bool YieldModel::name_may_yield(const std::string& simple_name) const {
  return yield_names_.count(simple_name) != 0;
}

std::vector<const FunctionInfo*> YieldModel::functions_in(
    const std::string& file) const {
  std::vector<const FunctionInfo*> out;
  for (const FunctionInfo& fn : fns_) {
    if (fn.file == file) out.push_back(&fn);
  }
  return out;
}

std::vector<int> YieldModel::yield_lines(const FunctionInfo& fn) const {
  std::vector<int> out = fn.primitive_lines;
  for (const CallSite& cs : fn.calls) {
    if (yield_names_.count(cs.callee) != 0) out.push_back(cs.line);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<std::string> YieldModel::golden_lines() const {
  std::vector<std::string> out;
  for (const FunctionInfo& fn : fns_) {
    if (!fn.may_yield || fn.name == "<lambda>") continue;
    out.push_back(fn.file + ":" + fn.qual_name);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace gvfs::lint
