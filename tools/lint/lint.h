// gvfs_lint: repo-specific static analysis guarding the invariants the
// simulator's value proposition rests on — bit-identical replays and
// byte-identical bench stdout. Machine-checked here, not reviewer-checked:
//
//   determinism-rng      host randomness (std::random_device, rand(), ...)
//                        anywhere; all randomness must come from seeded
//                        SplitMix64 streams (common/rng.h).
//   determinism-clock    host clocks (system_clock, steady_clock, time(),
//                        gettimeofday, ...) outside src/sim/ — virtual time
//                        is the only clock the simulation may observe.
//   unordered-iteration  iterating an unordered container in src/, bench/ or
//                        tools/ — iteration order is hash-seed dependent and
//                        must never feed BenchReport or simulated stdout.
//   stdout-print         std::cout/printf/puts in src/ or tests/ — simulated
//                        results are printed only by the sanctioned bench /
//                        CLI sites; libraries log via GVFS_* (stderr).
//   raw-counter          a raw integer member with a counter-style name
//                        (`u64 hits_`) in src/ — stats live in
//                        metrics::Counter/Gauge/Histogram instruments
//                        registered with the metrics registry, so every
//                        component's counters land in BENCH_*.json snapshots.
//   header-guard         header missing #pragma once.
//   cmake-registration   a .cc/.cpp not named in its directory's (or an
//                        ancestor's) CMakeLists.txt — unregistered sources
//                        silently drop out of the build and the gates.
//   yield-stale-ref      a reference/pointer/iterator into member state that
//   yield-index-loop     stays live across a may-yield call, a member-
//   yield-held-lock      container loop whose body yields, and a semaphore
//                        held across a yield — the cross-fiber invalidation
//                        rules from tools/lint/analyzer.h, driven by the
//                        interprocedural may-yield model (yield_model.h).
//                        Tree runs only (lint_tree); lint_content has no
//                        call graph to build the model from.
//
// Suppressions, in a comment on the flagged line or alone on the line above:
//   // gvfs-lint: allow(rule-a, rule-b) <reason>
// or for a whole file:
//   // gvfs-lint: file-allow(rule) <reason>
// Comments and string/char literals are stripped before token matching, so
// prose and format strings never trip the rules.
#pragma once

#include <string>
#include <vector>

namespace gvfs::lint {

struct Finding {
  std::string file;  // repo-relative, forward slashes
  int line = 0;      // 1-based
  std::string rule;
  std::string message;
};

[[nodiscard]] std::string to_string(const Finding& f);

// Every rule id the linter knows, in report order.
[[nodiscard]] const std::vector<std::string>& all_rules();

// Lint one in-memory file. `path` decides which path-scoped rules apply.
// `sibling_header` optionally supplies the paired .h content so container
// declarations in the header are visible when linting the .cc.
[[nodiscard]] std::vector<Finding> lint_content(
    const std::string& path, const std::string& content,
    const std::string& sibling_header = {});

// Walk src/, bench/, tests/, tools/ and examples/ under `root`, lint every
// source file, and check CMake registration. Skips lint_fixtures/ and
// build trees. File contents are read once per walk; the interprocedural
// yield analysis (analyzer.h) runs over the same cache. Findings are sorted
// by (file, line, rule).
[[nodiscard]] std::vector<Finding> lint_tree(const std::string& root);

// The computed may-yield function set for src/ under `root`, one sorted
// "file:qual_name" line per function — the format committed under
// tools/lint/yield_model_golden.txt and gated by ctest.
[[nodiscard]] std::vector<std::string> tree_yield_model(const std::string& root);

}  // namespace gvfs::lint
