// CLI driver for the repo linter (tools/lint/lint.h). Run by ctest (label
// "lint") and CI over the whole tree; exits non-zero on any finding.
//
// Usage:
//   gvfs_lint --root <repo-root>      lint src/ bench/ tests/ tools/ examples/
//   gvfs_lint --list-rules            print the rule ids and exit
#include <cstdio>
#include <cstring>
#include <string>

#include "lint/lint.h"

int main(int argc, char** argv) {
  std::string root = ".";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--list-rules") == 0) {
      for (const std::string& r : gvfs::lint::all_rules()) {
        std::printf("%s\n", r.c_str());
      }
      return 0;
    }
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
      continue;
    }
    std::fprintf(stderr, "usage: %s [--root DIR] [--list-rules]\n", argv[0]);
    return 2;
  }

  auto findings = gvfs::lint::lint_tree(root);
  for (const auto& f : findings) {
    std::printf("%s\n", gvfs::lint::to_string(f).c_str());
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "gvfs_lint: %zu finding(s)\n", findings.size());
    return 1;
  }
  std::fprintf(stderr, "gvfs_lint: clean\n");
  return 0;
}
