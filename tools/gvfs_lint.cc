// CLI driver for the repo linter (tools/lint/lint.h). Run by ctest (label
// "lint") and CI over the whole tree; exits non-zero on any finding.
//
// Usage:
//   gvfs_lint --root <repo-root>      lint src/ bench/ tests/ tools/ examples/
//                                     (includes the yield-point analysis)
//   gvfs_lint --list-rules            print the rule ids and exit
//   gvfs_lint --yield-model           print the computed may-yield set
//   gvfs_lint --yield-model-golden F  diff the may-yield set against the
//                                     committed golden file F; exit 1 on drift
#include <algorithm>
#include <chrono>  // gvfs-lint: allow(determinism-clock) host tool wall-clock report
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace {

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> out;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) out.push_back(line);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  bool print_model = false;
  std::string golden;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--list-rules") == 0) {
      for (const std::string& r : gvfs::lint::all_rules()) {
        std::printf("%s\n", r.c_str());
      }
      return 0;
    }
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
      continue;
    }
    if (std::strcmp(argv[i], "--yield-model") == 0) {
      print_model = true;
      continue;
    }
    if (std::strcmp(argv[i], "--yield-model-golden") == 0 && i + 1 < argc) {
      golden = argv[++i];
      continue;
    }
    std::fprintf(stderr,
                 "usage: %s [--root DIR] [--list-rules] [--yield-model] "
                 "[--yield-model-golden FILE]\n",
                 argv[0]);
    return 2;
  }

  if (print_model) {
    for (const std::string& l : gvfs::lint::tree_yield_model(root)) {
      std::printf("%s\n", l.c_str());
    }
    return 0;
  }

  if (!golden.empty()) {
    std::vector<std::string> want = read_lines(golden);
    std::vector<std::string> got = gvfs::lint::tree_yield_model(root);
    bool drift = false;
    for (const std::string& l : got) {
      if (std::find(want.begin(), want.end(), l) == want.end()) {
        std::printf("+ %s\n", l.c_str());
        drift = true;
      }
    }
    for (const std::string& l : want) {
      if (std::find(got.begin(), got.end(), l) == got.end()) {
        std::printf("- %s\n", l.c_str());
        drift = true;
      }
    }
    if (drift) {
      std::fprintf(stderr,
                   "gvfs_lint: may-yield set drifted from %s\n"
                   "  (+ = new yield point, - = removed). Review the diff, "
                   "then regenerate with:\n"
                   "  gvfs_lint --root . --yield-model > %s\n",
                   golden.c_str(), golden.c_str());
      return 1;
    }
    std::fprintf(stderr, "gvfs_lint: yield model matches golden (%zu functions)\n",
                 want.size());
    return 0;
  }

  // gvfs-lint: allow(determinism-clock) host tool wall-clock report
  auto t0 = std::chrono::steady_clock::now();
  auto findings = gvfs::lint::lint_tree(root);
  auto t1 = std::chrono::steady_clock::now();  // gvfs-lint: allow(determinism-clock) host tool wall-clock report
  long ms = std::chrono::duration_cast<std::chrono::milliseconds>(t1 - t0).count();
  for (const auto& f : findings) {
    std::printf("%s\n", gvfs::lint::to_string(f).c_str());
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "gvfs_lint: %zu finding(s) (lint+analysis in %ld ms)\n",
                 findings.size(), ms);
    return 1;
  }
  std::fprintf(stderr, "gvfs_lint: clean (lint+analysis in %ld ms)\n", ms);
  return 0;
}
