file(REMOVE_RECURSE
  "CMakeFiles/gvfs_sim_cli.dir/gvfs_sim.cc.o"
  "CMakeFiles/gvfs_sim_cli.dir/gvfs_sim.cc.o.d"
  "gvfs_sim"
  "gvfs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gvfs_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
