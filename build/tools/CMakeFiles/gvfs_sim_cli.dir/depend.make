# Empty dependencies file for gvfs_sim_cli.
# This may be replaced when dependencies are built.
