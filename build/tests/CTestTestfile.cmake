# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/blob_test[1]_include.cmake")
include("/root/repo/build/tests/xdr_test[1]_include.cmake")
include("/root/repo/build/tests/rpc_test[1]_include.cmake")
include("/root/repo/build/tests/vfs_test[1]_include.cmake")
include("/root/repo/build/tests/nfs_types_test[1]_include.cmake")
include("/root/repo/build/tests/nfs_client_server_test[1]_include.cmake")
include("/root/repo/build/tests/nfs_server_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/meta_test[1]_include.cmake")
include("/root/repo/build/tests/proxy_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/ssh_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
