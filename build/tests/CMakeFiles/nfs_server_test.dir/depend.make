# Empty dependencies file for nfs_server_test.
# This may be replaced when dependencies are built.
