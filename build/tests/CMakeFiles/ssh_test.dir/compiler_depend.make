# Empty compiler generated dependencies file for ssh_test.
# This may be replaced when dependencies are built.
