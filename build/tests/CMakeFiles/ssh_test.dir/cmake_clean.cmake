file(REMOVE_RECURSE
  "CMakeFiles/ssh_test.dir/ssh_test.cc.o"
  "CMakeFiles/ssh_test.dir/ssh_test.cc.o.d"
  "ssh_test"
  "ssh_test.pdb"
  "ssh_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssh_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
