file(REMOVE_RECURSE
  "CMakeFiles/nfs_types_test.dir/nfs_types_test.cc.o"
  "CMakeFiles/nfs_types_test.dir/nfs_types_test.cc.o.d"
  "nfs_types_test"
  "nfs_types_test.pdb"
  "nfs_types_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfs_types_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
