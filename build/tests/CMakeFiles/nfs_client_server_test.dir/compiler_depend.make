# Empty compiler generated dependencies file for nfs_client_server_test.
# This may be replaced when dependencies are built.
