file(REMOVE_RECURSE
  "CMakeFiles/nfs_client_server_test.dir/nfs_client_server_test.cc.o"
  "CMakeFiles/nfs_client_server_test.dir/nfs_client_server_test.cc.o.d"
  "nfs_client_server_test"
  "nfs_client_server_test.pdb"
  "nfs_client_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfs_client_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
