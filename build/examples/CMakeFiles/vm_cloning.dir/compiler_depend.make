# Empty compiler generated dependencies file for vm_cloning.
# This may be replaced when dependencies are built.
