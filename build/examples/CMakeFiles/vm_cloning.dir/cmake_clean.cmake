file(REMOVE_RECURSE
  "CMakeFiles/vm_cloning.dir/vm_cloning.cpp.o"
  "CMakeFiles/vm_cloning.dir/vm_cloning.cpp.o.d"
  "vm_cloning"
  "vm_cloning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_cloning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
