file(REMOVE_RECURSE
  "CMakeFiles/multilevel_cache.dir/multilevel_cache.cpp.o"
  "CMakeFiles/multilevel_cache.dir/multilevel_cache.cpp.o.d"
  "multilevel_cache"
  "multilevel_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multilevel_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
