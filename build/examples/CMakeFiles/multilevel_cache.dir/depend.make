# Empty dependencies file for multilevel_cache.
# This may be replaced when dependencies are built.
