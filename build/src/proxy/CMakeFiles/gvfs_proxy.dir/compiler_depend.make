# Empty compiler generated dependencies file for gvfs_proxy.
# This may be replaced when dependencies are built.
