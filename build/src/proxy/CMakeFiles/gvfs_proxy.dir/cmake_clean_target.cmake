file(REMOVE_RECURSE
  "libgvfs_proxy.a"
)
