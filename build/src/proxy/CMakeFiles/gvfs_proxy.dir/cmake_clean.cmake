file(REMOVE_RECURSE
  "CMakeFiles/gvfs_proxy.dir/caching_endpoint.cc.o"
  "CMakeFiles/gvfs_proxy.dir/caching_endpoint.cc.o.d"
  "CMakeFiles/gvfs_proxy.dir/gvfs_proxy.cc.o"
  "CMakeFiles/gvfs_proxy.dir/gvfs_proxy.cc.o.d"
  "libgvfs_proxy.a"
  "libgvfs_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gvfs_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
