# Empty dependencies file for gvfs_xdr.
# This may be replaced when dependencies are built.
