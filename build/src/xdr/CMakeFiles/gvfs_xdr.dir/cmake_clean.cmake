file(REMOVE_RECURSE
  "CMakeFiles/gvfs_xdr.dir/xdr.cc.o"
  "CMakeFiles/gvfs_xdr.dir/xdr.cc.o.d"
  "libgvfs_xdr.a"
  "libgvfs_xdr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gvfs_xdr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
