file(REMOVE_RECURSE
  "libgvfs_xdr.a"
)
