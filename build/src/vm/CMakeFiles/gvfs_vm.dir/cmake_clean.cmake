file(REMOVE_RECURSE
  "CMakeFiles/gvfs_vm.dir/guest_fs.cc.o"
  "CMakeFiles/gvfs_vm.dir/guest_fs.cc.o.d"
  "CMakeFiles/gvfs_vm.dir/redo_log.cc.o"
  "CMakeFiles/gvfs_vm.dir/redo_log.cc.o.d"
  "CMakeFiles/gvfs_vm.dir/vm_cloner.cc.o"
  "CMakeFiles/gvfs_vm.dir/vm_cloner.cc.o.d"
  "CMakeFiles/gvfs_vm.dir/vm_image.cc.o"
  "CMakeFiles/gvfs_vm.dir/vm_image.cc.o.d"
  "CMakeFiles/gvfs_vm.dir/vm_monitor.cc.o"
  "CMakeFiles/gvfs_vm.dir/vm_monitor.cc.o.d"
  "libgvfs_vm.a"
  "libgvfs_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gvfs_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
