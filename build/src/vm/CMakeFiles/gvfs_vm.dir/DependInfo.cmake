
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/guest_fs.cc" "src/vm/CMakeFiles/gvfs_vm.dir/guest_fs.cc.o" "gcc" "src/vm/CMakeFiles/gvfs_vm.dir/guest_fs.cc.o.d"
  "/root/repo/src/vm/redo_log.cc" "src/vm/CMakeFiles/gvfs_vm.dir/redo_log.cc.o" "gcc" "src/vm/CMakeFiles/gvfs_vm.dir/redo_log.cc.o.d"
  "/root/repo/src/vm/vm_cloner.cc" "src/vm/CMakeFiles/gvfs_vm.dir/vm_cloner.cc.o" "gcc" "src/vm/CMakeFiles/gvfs_vm.dir/vm_cloner.cc.o.d"
  "/root/repo/src/vm/vm_image.cc" "src/vm/CMakeFiles/gvfs_vm.dir/vm_image.cc.o" "gcc" "src/vm/CMakeFiles/gvfs_vm.dir/vm_image.cc.o.d"
  "/root/repo/src/vm/vm_monitor.cc" "src/vm/CMakeFiles/gvfs_vm.dir/vm_monitor.cc.o" "gcc" "src/vm/CMakeFiles/gvfs_vm.dir/vm_monitor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gvfs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/blob/CMakeFiles/gvfs_blob.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/gvfs_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/meta/CMakeFiles/gvfs_meta.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gvfs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/gvfs_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/ssh/CMakeFiles/gvfs_ssh.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/gvfs_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/xdr/CMakeFiles/gvfs_xdr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
