# Empty compiler generated dependencies file for gvfs_vm.
# This may be replaced when dependencies are built.
