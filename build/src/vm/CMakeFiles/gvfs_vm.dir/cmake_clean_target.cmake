file(REMOVE_RECURSE
  "libgvfs_vm.a"
)
