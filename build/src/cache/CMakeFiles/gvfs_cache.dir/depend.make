# Empty dependencies file for gvfs_cache.
# This may be replaced when dependencies are built.
