file(REMOVE_RECURSE
  "libgvfs_cache.a"
)
