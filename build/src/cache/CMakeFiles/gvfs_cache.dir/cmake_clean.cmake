file(REMOVE_RECURSE
  "CMakeFiles/gvfs_cache.dir/block_cache.cc.o"
  "CMakeFiles/gvfs_cache.dir/block_cache.cc.o.d"
  "CMakeFiles/gvfs_cache.dir/file_cache.cc.o"
  "CMakeFiles/gvfs_cache.dir/file_cache.cc.o.d"
  "libgvfs_cache.a"
  "libgvfs_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gvfs_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
