file(REMOVE_RECURSE
  "CMakeFiles/gvfs_meta.dir/file_channel.cc.o"
  "CMakeFiles/gvfs_meta.dir/file_channel.cc.o.d"
  "CMakeFiles/gvfs_meta.dir/meta_file.cc.o"
  "CMakeFiles/gvfs_meta.dir/meta_file.cc.o.d"
  "CMakeFiles/gvfs_meta.dir/speculation.cc.o"
  "CMakeFiles/gvfs_meta.dir/speculation.cc.o.d"
  "libgvfs_meta.a"
  "libgvfs_meta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gvfs_meta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
