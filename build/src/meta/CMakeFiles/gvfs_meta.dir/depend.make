# Empty dependencies file for gvfs_meta.
# This may be replaced when dependencies are built.
