file(REMOVE_RECURSE
  "libgvfs_meta.a"
)
