file(REMOVE_RECURSE
  "CMakeFiles/gvfs_rpc.dir/rpc.cc.o"
  "CMakeFiles/gvfs_rpc.dir/rpc.cc.o.d"
  "libgvfs_rpc.a"
  "libgvfs_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gvfs_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
