file(REMOVE_RECURSE
  "libgvfs_workload.a"
)
