file(REMOVE_RECURSE
  "CMakeFiles/gvfs_workload.dir/kernel_compile.cc.o"
  "CMakeFiles/gvfs_workload.dir/kernel_compile.cc.o.d"
  "CMakeFiles/gvfs_workload.dir/latex.cc.o"
  "CMakeFiles/gvfs_workload.dir/latex.cc.o.d"
  "CMakeFiles/gvfs_workload.dir/population.cc.o"
  "CMakeFiles/gvfs_workload.dir/population.cc.o.d"
  "CMakeFiles/gvfs_workload.dir/specseis.cc.o"
  "CMakeFiles/gvfs_workload.dir/specseis.cc.o.d"
  "CMakeFiles/gvfs_workload.dir/synthetic.cc.o"
  "CMakeFiles/gvfs_workload.dir/synthetic.cc.o.d"
  "CMakeFiles/gvfs_workload.dir/trace.cc.o"
  "CMakeFiles/gvfs_workload.dir/trace.cc.o.d"
  "libgvfs_workload.a"
  "libgvfs_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gvfs_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
