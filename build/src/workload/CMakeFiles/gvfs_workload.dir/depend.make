# Empty dependencies file for gvfs_workload.
# This may be replaced when dependencies are built.
