file(REMOVE_RECURSE
  "CMakeFiles/gvfs_vfs.dir/buffer_cache.cc.o"
  "CMakeFiles/gvfs_vfs.dir/buffer_cache.cc.o.d"
  "CMakeFiles/gvfs_vfs.dir/local_session.cc.o"
  "CMakeFiles/gvfs_vfs.dir/local_session.cc.o.d"
  "CMakeFiles/gvfs_vfs.dir/memfs.cc.o"
  "CMakeFiles/gvfs_vfs.dir/memfs.cc.o.d"
  "CMakeFiles/gvfs_vfs.dir/vfs.cc.o"
  "CMakeFiles/gvfs_vfs.dir/vfs.cc.o.d"
  "libgvfs_vfs.a"
  "libgvfs_vfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gvfs_vfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
