file(REMOVE_RECURSE
  "libgvfs_vfs.a"
)
