# Empty compiler generated dependencies file for gvfs_vfs.
# This may be replaced when dependencies are built.
