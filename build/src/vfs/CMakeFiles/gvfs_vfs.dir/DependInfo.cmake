
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vfs/buffer_cache.cc" "src/vfs/CMakeFiles/gvfs_vfs.dir/buffer_cache.cc.o" "gcc" "src/vfs/CMakeFiles/gvfs_vfs.dir/buffer_cache.cc.o.d"
  "/root/repo/src/vfs/local_session.cc" "src/vfs/CMakeFiles/gvfs_vfs.dir/local_session.cc.o" "gcc" "src/vfs/CMakeFiles/gvfs_vfs.dir/local_session.cc.o.d"
  "/root/repo/src/vfs/memfs.cc" "src/vfs/CMakeFiles/gvfs_vfs.dir/memfs.cc.o" "gcc" "src/vfs/CMakeFiles/gvfs_vfs.dir/memfs.cc.o.d"
  "/root/repo/src/vfs/vfs.cc" "src/vfs/CMakeFiles/gvfs_vfs.dir/vfs.cc.o" "gcc" "src/vfs/CMakeFiles/gvfs_vfs.dir/vfs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gvfs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/blob/CMakeFiles/gvfs_blob.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gvfs_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
