# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("blob")
subdirs("xdr")
subdirs("rpc")
subdirs("vfs")
subdirs("nfs")
subdirs("ssh")
subdirs("cache")
subdirs("meta")
subdirs("proxy")
subdirs("vm")
subdirs("workload")
subdirs("gvfs")
