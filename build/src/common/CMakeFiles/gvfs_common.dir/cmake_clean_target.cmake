file(REMOVE_RECURSE
  "libgvfs_common.a"
)
