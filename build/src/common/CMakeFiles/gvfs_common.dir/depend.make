# Empty dependencies file for gvfs_common.
# This may be replaced when dependencies are built.
