file(REMOVE_RECURSE
  "CMakeFiles/gvfs_common.dir/flags.cc.o"
  "CMakeFiles/gvfs_common.dir/flags.cc.o.d"
  "CMakeFiles/gvfs_common.dir/log.cc.o"
  "CMakeFiles/gvfs_common.dir/log.cc.o.d"
  "CMakeFiles/gvfs_common.dir/rng.cc.o"
  "CMakeFiles/gvfs_common.dir/rng.cc.o.d"
  "CMakeFiles/gvfs_common.dir/status.cc.o"
  "CMakeFiles/gvfs_common.dir/status.cc.o.d"
  "CMakeFiles/gvfs_common.dir/strings.cc.o"
  "CMakeFiles/gvfs_common.dir/strings.cc.o.d"
  "libgvfs_common.a"
  "libgvfs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gvfs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
