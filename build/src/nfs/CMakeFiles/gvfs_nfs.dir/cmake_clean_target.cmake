file(REMOVE_RECURSE
  "libgvfs_nfs.a"
)
