# Empty dependencies file for gvfs_nfs.
# This may be replaced when dependencies are built.
