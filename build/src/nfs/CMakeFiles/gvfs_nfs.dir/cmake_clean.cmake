file(REMOVE_RECURSE
  "CMakeFiles/gvfs_nfs.dir/nfs_client.cc.o"
  "CMakeFiles/gvfs_nfs.dir/nfs_client.cc.o.d"
  "CMakeFiles/gvfs_nfs.dir/nfs_server.cc.o"
  "CMakeFiles/gvfs_nfs.dir/nfs_server.cc.o.d"
  "CMakeFiles/gvfs_nfs.dir/nfs_types.cc.o"
  "CMakeFiles/gvfs_nfs.dir/nfs_types.cc.o.d"
  "libgvfs_nfs.a"
  "libgvfs_nfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gvfs_nfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
