file(REMOVE_RECURSE
  "CMakeFiles/gvfs_sim.dir/kernel.cc.o"
  "CMakeFiles/gvfs_sim.dir/kernel.cc.o.d"
  "CMakeFiles/gvfs_sim.dir/resources.cc.o"
  "CMakeFiles/gvfs_sim.dir/resources.cc.o.d"
  "libgvfs_sim.a"
  "libgvfs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gvfs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
