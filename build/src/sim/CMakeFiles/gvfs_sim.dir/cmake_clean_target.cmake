file(REMOVE_RECURSE
  "libgvfs_sim.a"
)
