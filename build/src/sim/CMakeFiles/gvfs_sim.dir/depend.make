# Empty dependencies file for gvfs_sim.
# This may be replaced when dependencies are built.
