# Empty compiler generated dependencies file for gvfs_core.
# This may be replaced when dependencies are built.
