file(REMOVE_RECURSE
  "libgvfs_core.a"
)
