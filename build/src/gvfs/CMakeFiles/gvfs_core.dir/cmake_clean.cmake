file(REMOVE_RECURSE
  "CMakeFiles/gvfs_core.dir/experiment.cc.o"
  "CMakeFiles/gvfs_core.dir/experiment.cc.o.d"
  "CMakeFiles/gvfs_core.dir/migration.cc.o"
  "CMakeFiles/gvfs_core.dir/migration.cc.o.d"
  "CMakeFiles/gvfs_core.dir/testbed.cc.o"
  "CMakeFiles/gvfs_core.dir/testbed.cc.o.d"
  "libgvfs_core.a"
  "libgvfs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gvfs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
