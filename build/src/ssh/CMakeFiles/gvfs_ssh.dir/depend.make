# Empty dependencies file for gvfs_ssh.
# This may be replaced when dependencies are built.
