file(REMOVE_RECURSE
  "CMakeFiles/gvfs_ssh.dir/ssh.cc.o"
  "CMakeFiles/gvfs_ssh.dir/ssh.cc.o.d"
  "libgvfs_ssh.a"
  "libgvfs_ssh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gvfs_ssh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
