file(REMOVE_RECURSE
  "libgvfs_ssh.a"
)
