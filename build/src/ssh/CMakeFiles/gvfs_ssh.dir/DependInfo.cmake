
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ssh/ssh.cc" "src/ssh/CMakeFiles/gvfs_ssh.dir/ssh.cc.o" "gcc" "src/ssh/CMakeFiles/gvfs_ssh.dir/ssh.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gvfs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/blob/CMakeFiles/gvfs_blob.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/gvfs_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gvfs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/xdr/CMakeFiles/gvfs_xdr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
