# Empty dependencies file for gvfs_blob.
# This may be replaced when dependencies are built.
