file(REMOVE_RECURSE
  "CMakeFiles/gvfs_blob.dir/blob.cc.o"
  "CMakeFiles/gvfs_blob.dir/blob.cc.o.d"
  "CMakeFiles/gvfs_blob.dir/extent_store.cc.o"
  "CMakeFiles/gvfs_blob.dir/extent_store.cc.o.d"
  "libgvfs_blob.a"
  "libgvfs_blob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gvfs_blob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
