file(REMOVE_RECURSE
  "libgvfs_blob.a"
)
