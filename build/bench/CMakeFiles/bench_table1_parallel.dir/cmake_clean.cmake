file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_parallel.dir/bench_table1_parallel.cc.o"
  "CMakeFiles/bench_table1_parallel.dir/bench_table1_parallel.cc.o.d"
  "bench_table1_parallel"
  "bench_table1_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
