# Empty dependencies file for bench_table1_parallel.
# This may be replaced when dependencies are built.
