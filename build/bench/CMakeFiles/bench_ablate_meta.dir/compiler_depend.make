# Empty compiler generated dependencies file for bench_ablate_meta.
# This may be replaced when dependencies are built.
