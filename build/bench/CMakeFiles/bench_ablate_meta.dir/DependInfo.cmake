
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablate_meta.cc" "bench/CMakeFiles/bench_ablate_meta.dir/bench_ablate_meta.cc.o" "gcc" "bench/CMakeFiles/bench_ablate_meta.dir/bench_ablate_meta.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gvfs/CMakeFiles/gvfs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/proxy/CMakeFiles/gvfs_proxy.dir/DependInfo.cmake"
  "/root/repo/build/src/meta/CMakeFiles/gvfs_meta.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/gvfs_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/ssh/CMakeFiles/gvfs_ssh.dir/DependInfo.cmake"
  "/root/repo/build/src/nfs/CMakeFiles/gvfs_nfs.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/gvfs_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/gvfs_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/xdr/CMakeFiles/gvfs_xdr.dir/DependInfo.cmake"
  "/root/repo/build/src/blob/CMakeFiles/gvfs_blob.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gvfs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gvfs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/gvfs_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/gvfs_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
