file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_meta.dir/bench_ablate_meta.cc.o"
  "CMakeFiles/bench_ablate_meta.dir/bench_ablate_meta.cc.o.d"
  "bench_ablate_meta"
  "bench_ablate_meta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_meta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
