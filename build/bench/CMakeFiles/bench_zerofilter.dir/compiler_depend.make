# Empty compiler generated dependencies file for bench_zerofilter.
# This may be replaced when dependencies are built.
