file(REMOVE_RECURSE
  "CMakeFiles/bench_zerofilter.dir/bench_zerofilter.cc.o"
  "CMakeFiles/bench_zerofilter.dir/bench_zerofilter.cc.o.d"
  "bench_zerofilter"
  "bench_zerofilter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_zerofilter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
