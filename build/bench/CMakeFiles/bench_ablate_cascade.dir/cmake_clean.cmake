file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_cascade.dir/bench_ablate_cascade.cc.o"
  "CMakeFiles/bench_ablate_cascade.dir/bench_ablate_cascade.cc.o.d"
  "bench_ablate_cascade"
  "bench_ablate_cascade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_cascade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
