# Empty dependencies file for bench_ablate_cascade.
# This may be replaced when dependencies are built.
