file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_latex.dir/bench_fig4_latex.cc.o"
  "CMakeFiles/bench_fig4_latex.dir/bench_fig4_latex.cc.o.d"
  "bench_fig4_latex"
  "bench_fig4_latex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_latex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
