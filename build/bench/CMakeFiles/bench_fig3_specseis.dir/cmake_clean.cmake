file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_specseis.dir/bench_fig3_specseis.cc.o"
  "CMakeFiles/bench_fig3_specseis.dir/bench_fig3_specseis.cc.o.d"
  "bench_fig3_specseis"
  "bench_fig3_specseis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_specseis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
