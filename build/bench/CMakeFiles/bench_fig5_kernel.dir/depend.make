# Empty dependencies file for bench_fig5_kernel.
# This may be replaced when dependencies are built.
