file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_cloning.dir/bench_fig6_cloning.cc.o"
  "CMakeFiles/bench_fig6_cloning.dir/bench_fig6_cloning.cc.o.d"
  "bench_fig6_cloning"
  "bench_fig6_cloning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_cloning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
